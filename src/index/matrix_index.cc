#include "index/matrix_index.h"

#include <algorithm>

#include "common/check.h"

namespace fcp {

void MatrixIndex::Insert(const Segment& segment) {
  FCP_CHECK(registry_.Find(segment.id()) == nullptr);
  registry_.Add(segment.id(),
                SegmentInfo{segment.stream(), segment.start_time(),
                            segment.end_time(),
                            static_cast<uint32_t>(segment.length())});
  // Construction-time distinct cache: no per-insert sort+unique.
  const std::vector<ObjectId>& distinct = segment.distinct_objects();
  for (size_t i = 0; i < distinct.size(); ++i) {
    for (size_t j = i; j < distinct.size(); ++j) {
      std::vector<SegmentId>& cell =
          cells_[PackKey(distinct[i], distinct[j])];
      if (cell.empty()) ++nonempty_cells_;
      if (cell.empty() || cell.back() < segment.id()) {
        cell.push_back(segment.id());
      } else {
        // Migration backfill replays old ids after newer ones; keep the
        // cell ascending (see di_index.cc).
        cell.insert(std::lower_bound(cell.begin(), cell.end(), segment.id()),
                    segment.id());
      }
      ++total_entries_;
    }
  }
  ++stats_.segments_inserted;
}

void MatrixIndex::ValidSegmentsInto(ObjectId a, ObjectId b, Timestamp now,
                                    DurationMs tau,
                                    std::vector<SegmentId>* out) {
  out->clear();
  std::vector<SegmentId>* cell_ptr = cells_.Find(PackKey(a, b));
  if (cell_ptr == nullptr || cell_ptr->empty()) return;
  std::vector<SegmentId>& cell = *cell_ptr;

  size_t write = 0;
  for (size_t read = 0; read < cell.size(); ++read) {
    ++stats_.cell_entries_scanned;
    const SegmentId id = cell[read];
    const SegmentInfo* info = registry_.Find(id);
    if (info == nullptr || now - info->start > tau) continue;  // drop
    cell[write++] = id;
    out->push_back(id);
  }
  total_entries_ -= cell.size() - write;
  cell.resize(write);
  if (write == 0) --nonempty_cells_;
}

std::vector<SegmentId> MatrixIndex::ValidSegments(ObjectId a, ObjectId b,
                                                  Timestamp now,
                                                  DurationMs tau) {
  std::vector<SegmentId> result;
  ValidSegmentsInto(a, b, now, tau, &result);
  return result;
}

size_t MatrixIndex::RemoveExpired(Timestamp now, DurationMs tau) {
  ++stats_.full_sweeps;
  expired_scratch_.clear();
  for (const auto& [id, info] : registry_) {
    if (now - info.start > tau) expired_scratch_.push_back(id);
  }
  if (expired_scratch_.empty()) return 0;
  std::sort(expired_scratch_.begin(), expired_scratch_.end());

  for (auto& [key, cell] : cells_) {
    (void)key;
    if (cell.empty()) continue;
    size_t write = 0;
    for (size_t read = 0; read < cell.size(); ++read) {
      ++stats_.cell_entries_scanned;
      if (!std::binary_search(expired_scratch_.begin(), expired_scratch_.end(),
                              cell[read])) {
        cell[write++] = cell[read];
      }
    }
    total_entries_ -= cell.size() - write;
    cell.resize(write);
    if (write == 0) --nonempty_cells_;
  }

  for (SegmentId id : expired_scratch_) registry_.Remove(id);
  stats_.segments_expired += expired_scratch_.size();
  return expired_scratch_.size();
}

size_t MatrixIndex::MemoryUsage() const {
  size_t bytes = cells_.MemoryUsage();
  bytes += total_entries_ * sizeof(SegmentId);
  bytes += registry_.MemoryUsage();
  return bytes;
}

}  // namespace fcp
