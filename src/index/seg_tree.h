// The Seg-tree (Section 4 of the paper): a trie-like in-memory index over the
// valid segments of all streams, with two auxiliary structures:
//
//  - Hlist: for every object, a doubly linked chain through all tree nodes
//    carrying that object (paper Fig. 2 left edge). Prefix search and SLCP
//    start from Hlist, which is why segments may share prefixes *anywhere*
//    in the tree, not only at the root.
//  - Tlist: tail-node references in segment completion order, used to find
//    obsolete segments quickly (Section 4.5).
//
// Differences from the paper, all documented in DESIGN.md §2:
//  - `distance` is maintained as an upper bound after deletions (the paper
//    never recomputes it either); DistanceBound only uses it for pruning.
//  - Hlist chains are doubly linked for O(1) unlink on deletion.
//  - Disconnected subtrees produced by deletion are re-attached under the
//    root by default; the paper's prefix-graft is available as an option
//    (`SegTreeOptions::graft_on_delete`) and benchmarked as an ablation.
//
// Hot-path memory layout (DESIGN.md §2 "Hot-path memory layout"): nodes live
// in a slab ObjectPool; their child and tail arrays live in size-class
// ChunkArenas and are recycled through per-capacity free lists; the id maps
// are open-addressing FlatMaps and the Tlist is a ring buffer. Steady-state
// insert/remove churn therefore performs no heap allocations once the
// structures are warm.

#ifndef FCP_INDEX_SEG_TREE_H_
#define FCP_INDEX_SEG_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/shard.h"
#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/ring_buffer.h"

namespace fcp {

/// Tuning knobs of the Seg-tree.
struct SegTreeOptions {
  /// If true, deletion re-inserts disconnected subtrees by grafting their
  /// single prefix onto an existing matching branch when that is
  /// collision-free (the paper's Section 4.5 behaviour); otherwise subtrees
  /// are re-attached under the root.
  bool graft_on_delete = true;

  /// If true, DistanceBound uses the per-node `distance` upper bound to
  /// prune its downward search (the paper's optimization). Disabling it
  /// explores every descendant — used by the ablation bench and by tests.
  bool use_distance_bound = true;

  /// Insertion examines at most this many Hlist chain nodes when searching
  /// the longest matching prefix (0 = unbounded, the paper's algorithm).
  /// Popular objects can have very long chains; prefix sharing is purely a
  /// compression optimization, so bounding the scan trades a little
  /// compression for O(1) insertion on skewed data.
  uint32_t max_prefix_probes = 64;

  /// Nodes per arena slab of the node pool.
  size_t pool_slab_nodes = 512;

  /// Bytes per slab of the child/tail chunk arenas.
  size_t chunk_slab_bytes = 64 * 1024;
};

/// Counters describing Seg-tree activity (inspected by tests and benches).
struct SegTreeStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_removed = 0;
  uint64_t nodes_created = 0;
  uint64_t nodes_deleted = 0;
  uint64_t nodes_recycled = 0;  ///< node acquisitions served by the free list
  uint64_t prefix_nodes_shared = 0;  ///< nodes reused via prefix match
  uint64_t subtrees_reattached = 0;
  uint64_t subtrees_grafted = 0;
  uint64_t distance_bound_visits = 0;  ///< nodes popped in DistanceBound
};

/// One row of an SLCP result: an existing segment and the set of objects it
/// shares with the probe segment (its largest common CP with the probe).
/// This is the owning, allocation-per-row convenience shape; the mining hot
/// path uses LcpTable instead.
struct LcpRow {
  SegmentId segment = kInvalidSegmentId;
  StreamId stream = 0;
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<ObjectId> common;  ///< sorted distinct objects
};

/// Flat, reusable SLCP result: one Row per relevant segment, with each row's
/// common-object set stored as a [begin, end) slice of one shared pool.
/// Clearing keeps the capacity, so a table reused across triggers stops
/// allocating once warm — the zero-allocation counterpart of
/// std::vector<LcpRow>.
struct LcpTable {
  struct Row {
    SegmentId segment = kInvalidSegmentId;
    StreamId stream = 0;
    Timestamp start = 0;
    Timestamp end = 0;
    uint32_t common_begin = 0;  ///< index into common_pool
    uint32_t common_end = 0;    ///< one past the row's last common object
  };

  std::vector<Row> rows;
  std::vector<ObjectId> common_pool;  ///< sorted distinct objects per row

  void Clear() {
    rows.clear();
    common_pool.clear();
  }
  size_t CommonSize(const Row& row) const {
    return row.common_end - row.common_begin;
  }
  const ObjectId* CommonBegin(const Row& row) const {
    return common_pool.data() + row.common_begin;
  }
  const ObjectId* CommonEnd(const Row& row) const {
    return common_pool.data() + row.common_end;
  }
};

/// The Seg-tree index. Single-threaded; owned by a CooMine instance (or used
/// directly by tests/benches).
class SegTree {
 public:
  explicit SegTree(SegTreeOptions options = {});
  ~SegTree();

  SegTree(const SegTree&) = delete;
  SegTree& operator=(const SegTree&) = delete;

  /// Inserts a completed segment (paper Section 4.4): finds its longest
  /// matching prefix via Hlist, shares it, appends the remainder, updates
  /// (distance, count) along the prefix, appends the tail to Tlist and the
  /// new nodes to their Hlist chains.
  void Insert(const Segment& segment);

  /// Removes one segment (paper Section 4.5): backtracks length-1 steps from
  /// the tail, decrements counts, deletes count==0 nodes and re-attaches any
  /// disconnected subtrees. No-op if the segment is not present.
  void Remove(SegmentId id);

  /// Removes every segment whose validity window has passed
  /// (`now - start > tau`), using Tlist order to stop early. Returns the
  /// number of segments removed. This is the paper's memory-pressure sweep;
  /// CooMine otherwise deletes lazily through ExpiredCandidates().
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  /// SLCP (paper Algorithm 2) into a caller-owned reusable table: for every
  /// object of `probe`, finds all valid segments containing it via
  /// DistanceBound (Algorithm 3), and emits one row per relevant segment
  /// with the common object set. Expired segments encountered during the
  /// search are recorded in `expired` (if non-null) for lazy deletion by the
  /// caller; they do not appear in the result.
  ///
  /// `now` anchors validity (callers pass the probe's end time). The probe
  /// itself must not be in the tree yet (mine first, insert after). `out` is
  /// cleared first; with a warm table the call performs no allocations.
  ///
  /// `shard` restricts the result to rows that can support a pattern OWNED
  /// by the shard (min-object ownership, see common/shard.h): a row is
  /// returned iff its common set contains >= 1 owned object. A non-singleton
  /// shard switches to a two-phase search that only walks the Hlist chains
  /// of the *owned* probe objects — an owned pattern's minimum object is an
  /// owned probe object, so each of its supporters is found there — and then
  /// reconstructs each hit row's full common set by walking that segment's
  /// tree path. Skipping the non-owned chains (which include the hottest
  /// objects for most shards) is what makes the sharded probe cheaper than
  /// 1/S of the serial one. Expired segments are only discovered on the
  /// chains actually walked; the periodic RemoveExpired sweep covers the
  /// rest.
  void SlcpInto(const Segment& probe, Timestamp now, DurationMs tau,
                std::vector<SegmentId>* expired, LcpTable* out,
                const ShardSpec& shard = {}) const;

  /// Convenience SLCP shape for tests/benches: same result as SlcpInto, one
  /// owning LcpRow per relevant segment.
  std::vector<LcpRow> Slcp(const Segment& probe, Timestamp now,
                           DurationMs tau,
                           std::vector<SegmentId>* expired) const;

  /// All valid segments containing `object` (DistanceBound over the object's
  /// Hlist chain). Exposed for tests and the ablation bench.
  std::vector<SegmentId> RelevantSegments(ObjectId object, Timestamp now,
                                          DurationMs tau) const;

  /// Number of live segments.
  size_t num_segments() const { return registry_.size(); }

  /// Number of tree nodes (excluding the root).
  size_t num_nodes() const { return num_nodes_; }

  /// Total objects (with multiplicity) across live segments; the compression
  /// ratio of Fig. 5(f) is (total_objects - num_nodes) / total_objects.
  uint64_t total_objects() const { return total_objects_; }

  /// Compression ratio (d1-d2)/d1 per Section 6.3, 0 if empty.
  double CompressionRatio() const;

  /// Memory footprint (bytes) of the tree + Hlist + Tlist + registry. Slab
  /// arena bytes are counted in full (free-listed and never-used slots
  /// included), so the figure never undercounts the true footprint.
  size_t MemoryUsage() const;

  /// Bytes held by the node arena (slabs + free-list bookkeeping).
  size_t ArenaBytes() const;

  const SegTreeStats& stats() const { return stats_; }
  const SegmentRegistry& registry() const { return registry_; }

  /// Software-prefetches `object`'s Hlist head slot (advisory, no observable
  /// effect). Batched ingestion calls this for the next segment's objects
  /// while the current one is mined, hiding the Hlist probe's cache miss.
  void PrefetchObject(ObjectId object) const { hlist_.PrefetchSlot(object); }

  /// Validates every structural invariant (parent/child symmetry, Hlist
  /// chains, counts, distance upper bounds, tail reachability). Aborts on
  /// violation; O(tree). Called by tests after every mutation batch.
  void CheckInvariants() const;

  /// Multi-line dump for debugging / the paper's Fig. 2 test.
  std::string DebugString() const;

 private:
  struct Node;

  // One (segment, length) pair recorded on a tail node — the only place the
  // Seg-tree stores per-segment membership (paper Section 4.3).
  struct TailEntry {
    SegmentId segment;
    uint32_t length;
    // Denormalized segment metadata so the search path never touches the
    // registry hash map (one entry per live segment; the duplication is
    // tiny).
    StreamId stream;
    Timestamp start;
    Timestamp end;
    // Sorted distinct objects of the segment (object_arena_-backed). The
    // ownership-filtered SLCP reconstructs a hit row's common set as
    // probe ∩ objects with one contiguous merge instead of backtracking the
    // node path (pointer chases). Owned by exactly one TailEntry; released
    // in RemoveSegmentPath (graft moves entries by value, transferring the
    // chunk).
    PooledVec<ObjectId> objects;
  };

  // Tlist element: completion-ordered reference to a segment (via tail_of_).
  struct TlistEntry {
    SegmentId segment = kInvalidSegmentId;
    Timestamp start = 0;
    Timestamp end = 0;
  };

  // --- construction helpers ---
  // Fills prefix_best_scratch_ with the nodes of the longest matching
  // prefix (possibly empty), in segment order.
  void FindLongestMatchingPrefix(const std::vector<SegmentEntry>& entries);
  Node* NewNode(ObjectId object);
  void FreeNode(Node* node);
  void LinkIntoHlist(Node* node);
  void UnlinkFromHlist(Node* node);
  void AttachChild(Node* parent, Node* child);
  void DetachChild(Node* child);

  // --- deletion helpers ---
  void RemoveSegmentPath(SegmentId id);
  void ReattachSubtree(Node* subtree_root);
  bool TryGraft(Node* subtree_root);

  // --- search helpers ---
  void CollectRelevantTails(const Node* start, Timestamp now, DurationMs tau,
                            std::vector<const TailEntry*>* out,
                            std::vector<SegmentId>* expired) const;

  SegTreeOptions options_;
  ObjectPool<Node> pool_;
  // The nodes' child and tail arrays live in these size-class arenas (not in
  // per-node std::vectors): a freed node's arrays go back to their capacity
  // class, so ANY node that later needs that capacity reuses them — the
  // property that makes steady-state churn allocation-free.
  ChunkArena<Node*> child_arena_;
  ChunkArena<TailEntry> tail_arena_;
  ChunkArena<ObjectId> object_arena_;  // TailEntry::objects chunks
  Node* root_;
  FlatMap<ObjectId, Node*> hlist_;
  RingBuffer<TlistEntry> tlist_;
  FlatMap<SegmentId, Node*> tail_of_;  // segment -> its tail node
  SegmentRegistry registry_;
  size_t num_nodes_ = 0;
  uint64_t total_objects_ = 0;
  // Reusable hot-path buffers (cleared per call, capacity kept) so the
  // steady-state insert/remove cycle performs no heap allocations.
  std::vector<Node*> path_scratch_;         // RemoveSegmentPath backtrack
  std::vector<Node*> prefix_path_scratch_;  // prefix-match trial path
  std::vector<Node*> prefix_best_scratch_;  // prefix-match best path
  std::vector<std::pair<Node*, Node*>> graft_work_;  // TryGraft worklist
  mutable SegTreeStats stats_;
};

}  // namespace fcp

#endif  // FCP_INDEX_SEG_TREE_H_
