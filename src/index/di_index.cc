#include "index/di_index.h"

#include <algorithm>

#include "common/check.h"
#include "util/memory.h"

namespace fcp {

void DiIndex::Insert(const Segment& segment) {
  FCP_CHECK(registry_.Find(segment.id()) == nullptr);
  registry_.Add(segment.id(),
                SegmentInfo{segment.stream(), segment.start_time(),
                            segment.end_time(),
                            static_cast<uint32_t>(segment.length())});
  for (ObjectId object : segment.DistinctObjects()) {
    postings_[object].push_back(segment.id());
    ++total_entries_;
  }
  ++stats_.segments_inserted;
}

std::vector<SegmentId> DiIndex::ValidSegments(ObjectId object, Timestamp now,
                                              DurationMs tau) {
  std::vector<SegmentId> result;
  auto it = postings_.find(object);
  if (it == postings_.end()) return result;
  std::vector<SegmentId>& posting = it->second;

  // One pass: keep valid ids, compact away expired ones. Expired segments
  // stay in the registry until the full sweep retires them everywhere (only
  // this posting is cleaned here — the paper's lazy compaction).
  size_t write = 0;
  for (size_t read = 0; read < posting.size(); ++read) {
    ++stats_.posting_entries_scanned;
    const SegmentId id = posting[read];
    const SegmentInfo* info = registry_.Find(id);
    if (info == nullptr || now - info->start > tau) continue;  // drop
    posting[write++] = id;
    result.push_back(id);
  }
  total_entries_ -= posting.size() - write;
  posting.resize(write);
  if (posting.empty()) postings_.erase(it);
  return result;
}

size_t DiIndex::RemoveExpired(Timestamp now, DurationMs tau) {
  ++stats_.full_sweeps;
  // Pass 1: collect expired segment ids from the registry.
  std::vector<SegmentId> expired;
  for (const auto& [id, info] : registry_) {
    if (now - info.start > tau) expired.push_back(id);
  }
  if (expired.empty()) {
    // Still must scan all postings for ids of segments already retired
    // elsewhere? No: ids are only retired by this sweep, so postings can
    // only contain live or expired ids. Nothing to do.
    return 0;
  }
  std::sort(expired.begin(), expired.end());

  // Pass 2: scrub every posting list (this is the O(n * p) cost the paper
  // measures in Fig. 5(c)-(e)).
  for (auto it = postings_.begin(); it != postings_.end();) {
    std::vector<SegmentId>& posting = it->second;
    size_t write = 0;
    for (size_t read = 0; read < posting.size(); ++read) {
      ++stats_.posting_entries_scanned;
      if (!std::binary_search(expired.begin(), expired.end(),
                              posting[read])) {
        posting[write++] = posting[read];
      }
    }
    total_entries_ -= posting.size() - write;
    posting.resize(write);
    if (posting.empty()) {
      it = postings_.erase(it);
    } else {
      ++it;
    }
  }

  // Pass 3: retire from the registry.
  for (SegmentId id : expired) registry_.Remove(id);
  stats_.segments_expired += expired.size();
  return expired.size();
}

size_t DiIndex::MemoryUsage() const {
  size_t bytes =
      HashMapFootprint<ObjectId, std::vector<SegmentId>>(postings_.size());
  bytes += total_entries_ * sizeof(SegmentId);
  bytes += registry_.MemoryUsage();
  return bytes;
}

}  // namespace fcp
