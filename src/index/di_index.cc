#include "index/di_index.h"

#include <algorithm>

#include "common/check.h"

namespace fcp {

void DiIndex::Insert(const Segment& segment) {
  FCP_CHECK(registry_.Find(segment.id()) == nullptr);
  registry_.Add(segment.id(),
                SegmentInfo{segment.stream(), segment.start_time(),
                            segment.end_time(),
                            static_cast<uint32_t>(segment.length())});
  // Construction-time distinct cache: no per-insert sort+unique.
  for (ObjectId object : segment.distinct_objects()) {
    PooledVec<SegmentId>& posting = postings_[object];
    if (posting.empty()) ++nonempty_postings_;
    if (posting.empty() || posting.back() < segment.id()) {
      posting.push_back(segment.id(), posting_arena_);
    } else {
      // Migration backfill replays segments with ids older than entries
      // already present; keep the list ascending so intersections stay
      // correct. Never taken outside backfill.
      posting.push_back(segment.id(), posting_arena_);
      SegmentId* pos = std::lower_bound(posting.begin(), posting.end() - 1,
                                        segment.id());
      std::copy_backward(pos, posting.end() - 1, posting.end());
      *pos = segment.id();
    }
    ++total_entries_;
  }
  ++stats_.segments_inserted;
}

void DiIndex::ValidSegmentsInto(ObjectId object, Timestamp now, DurationMs tau,
                                std::vector<SegmentId>* out) {
  out->clear();
  PooledVec<SegmentId>* posting_ptr = postings_.Find(object);
  if (posting_ptr == nullptr || posting_ptr->empty()) return;
  PooledVec<SegmentId>& posting = *posting_ptr;

  // One pass: keep valid ids, compact away expired ones. Expired segments
  // stay in the registry until the full sweep retires them everywhere (only
  // this posting is cleaned here — the paper's lazy compaction).
  size_t write = 0;
  for (size_t read = 0; read < posting.size(); ++read) {
    ++stats_.posting_entries_scanned;
    const SegmentId id = posting[read];
    const SegmentInfo* info = registry_.Find(id);
    if (info == nullptr || now - info->start > tau) continue;  // drop
    posting[write++] = id;
    out->push_back(id);
  }
  total_entries_ -= posting.size() - write;
  posting.count = static_cast<uint32_t>(write);
  if (write == 0) {
    // Hand the chunk back: capacity lives in the arena keyed by size, so the
    // next object that needs it — whichever that is — reuses it heap-free.
    posting.Reset(posting_arena_);
    --nonempty_postings_;
  }
}

std::vector<SegmentId> DiIndex::ValidSegments(ObjectId object, Timestamp now,
                                              DurationMs tau) {
  std::vector<SegmentId> result;
  ValidSegmentsInto(object, now, tau, &result);
  return result;
}

size_t DiIndex::RemoveExpired(Timestamp now, DurationMs tau) {
  ++stats_.full_sweeps;
  // Pass 1: collect expired segment ids from the registry.
  expired_scratch_.clear();
  for (const auto& [id, info] : registry_) {
    if (now - info.start > tau) expired_scratch_.push_back(id);
  }
  if (expired_scratch_.empty()) {
    // Ids are only retired by this sweep, so postings can only contain live
    // or expired ids. Nothing to do.
    return 0;
  }
  std::sort(expired_scratch_.begin(), expired_scratch_.end());

  // Pass 2: scrub every posting list (this is the O(n * p) cost the paper
  // measures in Fig. 5(c)-(e)). Drained lists return their chunk to the
  // arena's free lists for any object to reuse.
  for (auto& [object, posting] : postings_) {
    (void)object;
    if (posting.empty()) continue;
    size_t write = 0;
    for (size_t read = 0; read < posting.size(); ++read) {
      ++stats_.posting_entries_scanned;
      if (!std::binary_search(expired_scratch_.begin(), expired_scratch_.end(),
                              posting[read])) {
        posting[write++] = posting[read];
      }
    }
    total_entries_ -= posting.size() - write;
    posting.count = static_cast<uint32_t>(write);
    if (write == 0) {
      posting.Reset(posting_arena_);
      --nonempty_postings_;
    }
  }

  // Pass 3: retire from the registry.
  for (SegmentId id : expired_scratch_) registry_.Remove(id);
  stats_.segments_expired += expired_scratch_.size();
  return expired_scratch_.size();
}

size_t DiIndex::MemoryUsage() const {
  size_t bytes = postings_.MemoryUsage();
  // The arena's slabs ARE the posting storage (live, free-listed and unused
  // space alike), so count them instead of the logical entry bytes.
  bytes += posting_arena_.SlabBytes() + posting_arena_.FreeListBytes();
  bytes += registry_.MemoryUsage();
  return bytes;
}

}  // namespace fcp
