// The Matrix index of the MatrixMine baseline (Section 6.2 of the paper):
// for every pair of co-occurring objects (and every single object on the
// diagonal), the list of (segment, stream) occurrences.
//
// Deliberately faithful to the baseline's weaknesses: inserting a segment
// with d distinct objects creates O(d^2) pair entries, and expiry has to
// touch every matrix cell.

#ifndef FCP_INDEX_MATRIX_INDEX_H_
#define FCP_INDEX_MATRIX_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"

namespace fcp {

/// Counters describing Matrix activity.
struct MatrixIndexStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_expired = 0;
  uint64_t cell_entries_scanned = 0;
  uint64_t full_sweeps = 0;
};

/// Sparse upper-triangular co-occurrence matrix (hash map keyed on object
/// pairs with first <= second; the diagonal indexes single objects).
class MatrixIndex {
 public:
  MatrixIndex() = default;
  MatrixIndex(const MatrixIndex&) = delete;
  MatrixIndex& operator=(const MatrixIndex&) = delete;

  /// Indexes a completed segment: every unordered pair {oi, oj} of its
  /// distinct objects (including {oi, oi}) records the segment id.
  void Insert(const Segment& segment);

  /// Valid segments whose object set contains both `a` and `b` (pass a == b
  /// for single-object lookup), ascending id order, compacting the cell.
  std::vector<SegmentId> ValidSegments(ObjectId a, ObjectId b, Timestamp now,
                                       DurationMs tau);

  /// Full expiry sweep over every cell. Returns segments retired.
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  size_t num_segments() const { return registry_.size(); }
  size_t num_cells() const { return cells_.size(); }
  uint64_t total_entries() const { return total_entries_; }

  const SegmentRegistry& registry() const { return registry_; }
  const MatrixIndexStats& stats() const { return stats_; }

  /// Analytic memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  using Key = std::pair<ObjectId, ObjectId>;

  static Key MakeKey(ObjectId a, ObjectId b) {
    return a <= b ? Key{a, b} : Key{b, a};
  }

  std::unordered_map<Key, std::vector<SegmentId>, PairHash> cells_;
  SegmentRegistry registry_;
  uint64_t total_entries_ = 0;
  MatrixIndexStats stats_;
};

}  // namespace fcp

#endif  // FCP_INDEX_MATRIX_INDEX_H_
