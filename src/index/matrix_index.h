// The Matrix index of the MatrixMine baseline (Section 6.2 of the paper):
// for every pair of co-occurring objects (and every single object on the
// diagonal), the list of (segment, stream) occurrences.
//
// Deliberately faithful to the baseline's weaknesses: inserting a segment
// with d distinct objects creates O(d^2) pair entries, and expiry has to
// touch every matrix cell.
//
// Cells are keyed by the two 32-bit ObjectIds packed into one uint64 so they
// fit a FlatMap slot, and drained cells are *kept* for their vector capacity
// (see di_index.h for the rationale) — a steady-state matrix performs no
// heap allocations.

#ifndef FCP_INDEX_MATRIX_INDEX_H_
#define FCP_INDEX_MATRIX_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"
#include "util/flat_map.h"

namespace fcp {

/// Counters describing Matrix activity.
struct MatrixIndexStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_expired = 0;
  uint64_t cell_entries_scanned = 0;
  uint64_t full_sweeps = 0;
};

/// Sparse upper-triangular co-occurrence matrix (flat hash map keyed on
/// packed object pairs with first <= second; the diagonal indexes single
/// objects).
class MatrixIndex {
 public:
  MatrixIndex() = default;
  MatrixIndex(const MatrixIndex&) = delete;
  MatrixIndex& operator=(const MatrixIndex&) = delete;

  /// Indexes a completed segment: every unordered pair {oi, oj} of its
  /// distinct objects (including {oi, oi}) records the segment id.
  void Insert(const Segment& segment);

  /// Appends the valid segments whose object set contains both `a` and `b`
  /// (pass a == b for single-object lookup) to `*out` (cleared first;
  /// ascending id order), compacting the cell in passing.
  void ValidSegmentsInto(ObjectId a, ObjectId b, Timestamp now, DurationMs tau,
                         std::vector<SegmentId>* out);

  /// Allocating convenience wrapper over ValidSegmentsInto.
  std::vector<SegmentId> ValidSegments(ObjectId a, ObjectId b, Timestamp now,
                                       DurationMs tau);

  /// Full expiry sweep over every cell. Returns segments retired.
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  size_t num_segments() const { return registry_.size(); }
  /// Number of cells with at least one live entry (drained cells are
  /// retained for their capacity but not counted).
  size_t num_cells() const { return nonempty_cells_; }
  uint64_t total_entries() const { return total_entries_; }

  const SegmentRegistry& registry() const { return registry_; }
  const MatrixIndexStats& stats() const { return stats_; }

  /// Analytic memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  /// Packs the unordered pair into one 64-bit key, smaller id in the high
  /// half (ObjectId is 32-bit).
  static uint64_t PackKey(ObjectId a, ObjectId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  FlatMap<uint64_t, std::vector<SegmentId>> cells_;
  SegmentRegistry registry_;
  uint64_t total_entries_ = 0;
  size_t nonempty_cells_ = 0;
  MatrixIndexStats stats_;
  std::vector<SegmentId> expired_scratch_;   ///< RemoveExpired's worklist
};

}  // namespace fcp

#endif  // FCP_INDEX_MATRIX_INDEX_H_
