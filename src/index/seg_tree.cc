#include "index/seg_tree.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "util/memory.h"

namespace fcp {

struct SegTree::Node {
  Node() = default;

  ObjectId object = kInvalidObjectId;
  // Upper bound on the number of edges from this node to the farthest tail
  // node among segments containing it (exact after insertion; may
  // overestimate after deletions, which only weakens pruning).
  uint32_t distance = 0;
  // Exact number of live segments whose path contains this node.
  uint32_t count = 0;

  Node* parent = nullptr;
  uint32_t parent_index = 0;  // position in parent->children (swap-erase)
  PooledVec<Node*> children;  // chunk-arena backed (see ChunkArena)

  // Doubly linked Hlist chain of nodes carrying the same object.
  Node* hnext = nullptr;
  Node* hprev = nullptr;

  // Non-empty iff this is a tail node.
  PooledVec<TailEntry> tails;
};

SegTree::SegTree(SegTreeOptions options)
    : options_(options),
      pool_(options.pool_slab_nodes),
      child_arena_(options.chunk_slab_bytes),
      tail_arena_(options.chunk_slab_bytes),
      object_arena_(options.chunk_slab_bytes) {
  root_ = pool_.Acquire();  // freshly constructed: fields are default-init
}

SegTree::~SegTree() = default;  // pool_ destroys every node it ever made

// ---------------------------------------------------------------------------
// Low-level linkage helpers
// ---------------------------------------------------------------------------

SegTree::Node* SegTree::NewNode(ObjectId object) {
  ++num_nodes_;
  ++stats_.nodes_created;
  Node* node = pool_.Acquire();
  stats_.nodes_recycled = pool_.stats().objects_recycled;
  node->object = object;
  node->distance = 0;
  node->count = 0;
  node->parent = nullptr;
  node->parent_index = 0;
  node->hnext = node->hprev = nullptr;
  FCP_DCHECK(node->children.empty() && node->tails.empty());
  return node;
}

void SegTree::FreeNode(Node* node) {
  // The arrays go back to their capacity-class free lists, not to the node:
  // whichever node next needs that capacity reuses them.
  node->children.Reset(child_arena_);
  node->tails.Reset(tail_arena_);
  pool_.Release(node);
  --num_nodes_;
  ++stats_.nodes_deleted;
}

void SegTree::LinkIntoHlist(Node* node) {
  Node*& head = hlist_[node->object];
  node->hprev = nullptr;
  node->hnext = head;
  if (head != nullptr) head->hprev = node;
  head = node;
}

void SegTree::UnlinkFromHlist(Node* node) {
  if (node->hprev != nullptr) {
    node->hprev->hnext = node->hnext;
  } else {
    Node** head = hlist_.Find(node->object);
    FCP_DCHECK(head != nullptr && *head == node);
    if (node->hnext == nullptr) {
      hlist_.Erase(node->object);
    } else {
      *head = node->hnext;
    }
  }
  if (node->hnext != nullptr) node->hnext->hprev = node->hprev;
  node->hprev = node->hnext = nullptr;
}

void SegTree::AttachChild(Node* parent, Node* child) {
  child->parent = parent;
  child->parent_index = static_cast<uint32_t>(parent->children.size());
  parent->children.push_back(child, child_arena_);
}

void SegTree::DetachChild(Node* child) {
  Node* parent = child->parent;
  FCP_DCHECK(parent != nullptr);
  auto& siblings = parent->children;
  FCP_DCHECK(child->parent_index < siblings.size() &&
             siblings[child->parent_index] == child);
  Node* last = siblings.back();
  siblings[child->parent_index] = last;
  last->parent_index = child->parent_index;
  siblings.pop_back();
  child->parent = nullptr;
  child->parent_index = 0;
}

// ---------------------------------------------------------------------------
// Insertion (paper Section 4.4, Algorithm 1)
// ---------------------------------------------------------------------------

void SegTree::FindLongestMatchingPrefix(
    const std::vector<SegmentEntry>& entries) {
  std::vector<Node*>& best = prefix_best_scratch_;
  std::vector<Node*>& path = prefix_path_scratch_;
  best.clear();
  Node* const* head = hlist_.Find(entries.front().object);
  if (head == nullptr) return;

  uint32_t probes = 0;
  for (Node* start = *head; start != nullptr; start = start->hnext) {
    // Bound the number of candidate start nodes examined: popular objects
    // (hot words) can have thousands of chain nodes, and prefix sharing is
    // an optimization, not a correctness requirement. Chains are
    // newest-first, so the first probes are the most likely matches.
    if (options_.max_prefix_probes != 0 &&
        ++probes > options_.max_prefix_probes) {
      break;
    }
    path.clear();
    path.push_back(start);
    Node* cur = start;
    for (size_t i = 1; i < entries.size(); ++i) {
      Node* next = nullptr;
      for (Node* c : cur->children) {
        if (c->object == entries[i].object) {
          next = c;
          break;
        }
      }
      if (next == nullptr) break;
      path.push_back(next);
      cur = next;
    }
    if (path.size() > best.size()) best.assign(path.begin(), path.end());
    if (best.size() == entries.size()) break;  // cannot do better
  }
}

void SegTree::Insert(const Segment& segment) {
  const auto& entries = segment.entries();
  const uint32_t length = static_cast<uint32_t>(entries.size());
  FCP_CHECK(length > 0);
  FCP_CHECK(registry_.Find(segment.id()) == nullptr);

  FindLongestMatchingPrefix(entries);
  const std::vector<Node*>& prefix = prefix_best_scratch_;

  // Update the attributes of the shared prefix (Example 3).
  for (size_t i = 0; i < prefix.size(); ++i) {
    Node* node = prefix[i];
    node->count += 1;
    node->distance =
        std::max(node->distance, length - 1 - static_cast<uint32_t>(i));
  }
  stats_.prefix_nodes_shared += prefix.size();

  // Append the remaining objects below the prefix (or below the root).
  Node* cur = prefix.empty() ? root_ : prefix.back();
  for (size_t i = prefix.size(); i < entries.size(); ++i) {
    Node* node = NewNode(entries[i].object);
    node->count = 1;
    node->distance = length - 1 - static_cast<uint32_t>(i);
    AttachChild(cur, node);
    LinkIntoHlist(node);
    cur = node;
  }

  // `cur` is the tail node of this segment.
  TailEntry tail_entry{segment.id(), length, segment.stream(),
                       segment.start_time(), segment.end_time(), {}};
  // Construction-time distinct cache: no per-insert sort+unique.
  for (ObjectId object : segment.distinct_objects()) {
    tail_entry.objects.push_back(object, object_arena_);
  }
  cur->tails.push_back(tail_entry, tail_arena_);
  tail_of_.Insert(segment.id(), cur);
  registry_.Add(segment.id(),
                SegmentInfo{segment.stream(), segment.start_time(),
                            segment.end_time(), length});
  tlist_.push_back(
      TlistEntry{segment.id(), segment.start_time(), segment.end_time()});
  total_objects_ += length;
  ++stats_.segments_inserted;
}

// ---------------------------------------------------------------------------
// Deletion (paper Section 4.5)
// ---------------------------------------------------------------------------

void SegTree::Remove(SegmentId id) {
  if (tail_of_.Find(id) == nullptr) return;  // removed (lazy deletion races)
  RemoveSegmentPath(id);
}

void SegTree::RemoveSegmentPath(SegmentId id) {
  Node* const* tail_slot = tail_of_.Find(id);
  FCP_CHECK(tail_slot != nullptr);
  Node* tail = *tail_slot;
  const SegmentInfo* info = registry_.Find(id);
  FCP_CHECK(info != nullptr);
  const uint32_t length = info->length;

  // Drop the tail entry.
  auto& tails = tail->tails;
  size_t te = 0;
  while (te < tails.size() && tails[te].segment != id) ++te;
  FCP_CHECK(te < tails.size());
  tails[te].objects.Reset(object_arena_);
  tails.erase_at(te);

  // Reconstruct the segment's node path by backtracking length-1 edges.
  std::vector<Node*>& path = path_scratch_;
  path.resize(length);
  Node* n = tail;
  for (uint32_t i = 0; i < length; ++i) {
    FCP_CHECK(n != nullptr && n != root_);
    path[length - 1 - i] = n;
    n = n->parent;
  }

  for (Node* p : path) {
    FCP_CHECK(p->count > 0);
    p->count -= 1;
  }

  // Bottom-up removal of nodes that no longer belong to any live segment.
  for (uint32_t i = length; i-- > 0;) {
    Node* p = path[i];
    if (p->count > 0) continue;
    FCP_DCHECK(p->tails.empty());
    // Children that survive (count > 0) become disconnected subtrees.
    while (!p->children.empty()) {
      Node* c = p->children.back();
      FCP_DCHECK(c->count > 0);
      DetachChild(c);
      ReattachSubtree(c);
    }
    DetachChild(p);
    UnlinkFromHlist(p);
    FreeNode(p);
  }
  path.clear();

  total_objects_ -= length;
  tail_of_.Erase(id);
  registry_.Remove(id);
  ++stats_.segments_removed;
  // The Tlist entry is left behind and skipped/cleaned by RemoveExpired.
}

void SegTree::ReattachSubtree(Node* subtree_root) {
  if (options_.graft_on_delete && TryGraft(subtree_root)) {
    ++stats_.subtrees_grafted;
    return;
  }
  AttachChild(root_, subtree_root);
  ++stats_.subtrees_reattached;
}

namespace {

// True iff `node` lies inside the subtree rooted at `root` (inclusive).
bool IsInSubtree(const void* root, const void* node,
                 const void* (*parent_of)(const void*)) {
  for (const void* n = node; n != nullptr; n = parent_of(n)) {
    if (n == root) return true;
  }
  return false;
}

}  // namespace

bool SegTree::TryGraft(Node* subtree_root) {
  // Find an existing node elsewhere in the tree carrying the same object;
  // merge the subtree into it (recursively pairing equal-object children).
  // Any live segment with a tail inside the detached subtree is fully
  // contained in it (otherwise the deleted ancestors would have had
  // count > 0), so rewriting what is above the subtree root is safe.
  Node* const* head = hlist_.Find(subtree_root->object);
  if (head == nullptr) return false;

  auto parent_of = [](const void* n) -> const void* {
    return static_cast<const Node*>(n)->parent;
  };
  Node* target = nullptr;
  for (Node* q = *head; q != nullptr; q = q->hnext) {
    if (q == subtree_root) continue;
    // A count==0 node is mid-deletion (live nodes always have count >= 1):
    // grafting into it would revive it only for RemoveSegmentPath to delete
    // it moments later, destroying the grafted segments' paths.
    if (q->count == 0) continue;
    if (IsInSubtree(subtree_root, q, parent_of)) continue;
    target = q;
    break;
  }
  if (target == nullptr) return false;

  // Recursive merge: absorb `src` into `dst` (same object), then merge or
  // attach src's children. Uses an explicit worklist (member scratch, so
  // steady-state deletion stays allocation-free) to bound stack depth.
  std::vector<std::pair<Node*, Node*>>& work = graft_work_;
  work.clear();
  work.emplace_back(target, subtree_root);
  while (!work.empty()) {
    auto [dst, src] = work.back();
    work.pop_back();
    FCP_DCHECK(dst->object == src->object);
    dst->count += src->count;
    dst->distance = std::max(dst->distance, src->distance);
    for (const TailEntry& t : src->tails) {
      dst->tails.push_back(t, tail_arena_);
      Node** slot = tail_of_.Find(t.segment);
      FCP_DCHECK(slot != nullptr);
      *slot = dst;
    }
    while (!src->children.empty()) {
      Node* sc = src->children.back();
      DetachChild(sc);
      Node* dc = nullptr;
      for (Node* c : dst->children) {
        // Skip mid-deletion (count==0) children for the same reason as in
        // the target scan above; attaching alongside creates a transient
        // duplicate-object sibling that RemoveSegmentPath clears before the
        // deletion finishes.
        if (c->object == sc->object && c->count > 0) {
          dc = c;
          break;
        }
      }
      if (dc != nullptr) {
        work.emplace_back(dc, sc);
      } else {
        AttachChild(dst, sc);
      }
    }
    UnlinkFromHlist(src);
    FreeNode(src);
  }
  return true;
}

size_t SegTree::RemoveExpired(Timestamp now, DurationMs tau) {
  // Tlist is in completion order, which tracks segment start order closely;
  // scanning from the front and stopping at the first live, non-expired
  // entry makes the sweep O(#expired) — the purpose of the Tlist
  // (Section 4.5). A segment completed out of start order may survive one
  // sweep longer; it is still filtered from every query by the validity
  // check and is removed once the entries ahead of it expire (or lazily via
  // Slcp's expired-flagging).
  size_t removed = 0;
  while (!tlist_.empty()) {
    const TlistEntry& entry = tlist_.front();
    const SegmentInfo* info = registry_.Find(entry.segment);
    if (info == nullptr) {  // removed earlier (lazy deletion); drop stale
      tlist_.pop_front();
      continue;
    }
    if (now - info->start > tau) {
      RemoveSegmentPath(entry.segment);
      tlist_.pop_front();
      ++removed;
    } else {
      break;
    }
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Search (paper Algorithms 2 & 3)
// ---------------------------------------------------------------------------

void SegTree::CollectRelevantTails(const Node* start, Timestamp now,
                                   DurationMs tau,
                                   std::vector<const TailEntry*>* out,
                                   std::vector<SegmentId>* expired) const {
  struct Item {
    const Node* node;
    uint32_t budget;  // how many more levels we may descend
    uint32_t depth;   // edges from `start`
  };
  constexpr uint32_t kUnbounded = 0xffffffffu;
  // Reused across calls to avoid per-search allocation on the hot path.
  static thread_local std::vector<Item> queue;
  queue.clear();
  queue.push_back(Item{
      start, options_.use_distance_bound ? start->distance : kUnbounded, 0});

  while (!queue.empty()) {
    const Item item = queue.back();
    queue.pop_back();
    ++stats_.distance_bound_visits;
    const Node* n = item.node;
    for (const TailEntry& t : n->tails) {
      // The segment covers `start` iff `start` lies within length-1 edges
      // above the tail (Theorem 2 / Section 5.2.1).
      if (item.depth <= t.length - 1) {
        if (now - t.start > tau) {
          if (expired != nullptr) expired->push_back(t.segment);
        } else {
          out->push_back(&t);
        }
      }
    }
    if (item.budget == 0) continue;
    for (const Node* c : n->children) {
      const uint32_t child_bound =
          options_.use_distance_bound ? c->distance : kUnbounded;
      queue.push_back(Item{c, std::min(child_bound, item.budget - 1),
                           item.depth + 1});
    }
  }
}

std::vector<SegmentId> SegTree::RelevantSegments(ObjectId object,
                                                 Timestamp now,
                                                 DurationMs tau) const {
  std::vector<SegmentId> result;
  Node* const* head = hlist_.Find(object);
  if (head == nullptr) return result;
  std::vector<const TailEntry*> hits;
  for (const Node* n = *head; n != nullptr; n = n->hnext) {
    CollectRelevantTails(n, now, tau, &hits, nullptr);
  }
  result.reserve(hits.size());
  for (const TailEntry* t : hits) result.push_back(t->segment);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

void SegTree::SlcpInto(const Segment& probe, Timestamp now, DurationMs tau,
                       std::vector<SegmentId>* expired, LcpTable* out,
                       const ShardSpec& shard) const {
  out->Clear();
  // Gather (segment, probe-object) hit records, then sort and group them
  // into one row per relevant segment. Sorting a flat hit vector is markedly
  // faster than hash-accumulating per hit (popular objects produce
  // thousands of hits per probe); the TailEntry pointer carries the row
  // metadata so no registry lookups happen at all.
  struct Hit {
    SegmentId segment;
    ObjectId object;
    const TailEntry* tail;
  };
  static thread_local std::vector<Hit> hit_records;
  static thread_local std::vector<const TailEntry*> hits;
  hit_records.clear();
  // The probe's sorted distinct objects, cached at segment construction.
  const std::vector<ObjectId>& probe_objects = probe.distinct_objects();

  if (!shard.IsSingleton()) {
    // Two-phase ownership-filtered search (see the header comment).
    //
    // Phase 1: the chains of the owned probe objects find every segment
    // whose common set contains >= 1 owned object — exactly the rows a
    // shard-owned pattern can draw support from.
    static thread_local std::vector<const TailEntry*> live;
    live.clear();
    for (ObjectId object : probe_objects) {
      if (!shard.Owns(object)) continue;
      Node* const* head = hlist_.Find(object);
      if (head == nullptr) continue;
      for (const Node* n = *head; n != nullptr; n = n->hnext) {
        CollectRelevantTails(n, now, tau, &live, expired);
      }
    }
    std::sort(live.begin(), live.end(),
              [](const TailEntry* a, const TailEntry* b) {
                return a->segment < b->segment;
              });
    live.erase(std::unique(live.begin(), live.end(),
                           [](const TailEntry* a, const TailEntry* b) {
                             return a->segment == b->segment;
                           }),
               live.end());

    // Phase 2: reconstruct each live row's full common set (owned objects
    // alone are not enough — patterns extend past the minimum object) as
    // probe ∩ segment, one linear merge of two small sorted arrays per row
    // (TailEntry::objects is the segment's sorted distinct object list).
    for (const TailEntry* t : live) {
      LcpTable::Row row;
      row.segment = t->segment;
      row.stream = t->stream;
      row.start = t->start;
      row.end = t->end;
      row.common_begin = static_cast<uint32_t>(out->common_pool.size());
      const ObjectId* a = probe_objects.data();
      const ObjectId* const ae = a + probe_objects.size();
      const ObjectId* b = t->objects.begin();
      const ObjectId* const be = t->objects.end();
      while (a != ae && b != be) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          out->common_pool.push_back(*a);
          ++a;
          ++b;
        }
      }
      row.common_end = static_cast<uint32_t>(out->common_pool.size());
      out->rows.push_back(row);
    }
    if (expired != nullptr) {
      std::sort(expired->begin(), expired->end());
      expired->erase(std::unique(expired->begin(), expired->end()),
                     expired->end());
    }
    return;
  }

  for (ObjectId object : probe_objects) {
    Node* const* head = hlist_.Find(object);
    if (head == nullptr) continue;
    hits.clear();
    for (const Node* n = *head; n != nullptr; n = n->hnext) {
      CollectRelevantTails(n, now, tau, &hits, expired);
    }
    for (const TailEntry* t : hits) {
      hit_records.push_back(Hit{t->segment, object, t});
    }
  }
  std::sort(hit_records.begin(), hit_records.end(),
            [](const Hit& a, const Hit& b) {
              if (a.segment != b.segment) return a.segment < b.segment;
              return a.object < b.object;
            });

  for (size_t i = 0; i < hit_records.size();) {
    const Hit& first = hit_records[i];
    LcpTable::Row row;
    row.segment = first.segment;
    row.stream = first.tail->stream;
    row.start = first.tail->start;
    row.end = first.tail->end;
    row.common_begin = static_cast<uint32_t>(out->common_pool.size());
    while (i < hit_records.size() &&
           hit_records[i].segment == first.segment) {
      if (out->common_pool.size() == row.common_begin ||
          out->common_pool.back() != hit_records[i].object) {
        out->common_pool.push_back(hit_records[i].object);
      }
      ++i;
    }
    row.common_end = static_cast<uint32_t>(out->common_pool.size());
    out->rows.push_back(row);
  }
  if (expired != nullptr) {
    std::sort(expired->begin(), expired->end());
    expired->erase(std::unique(expired->begin(), expired->end()),
                   expired->end());
  }
}

std::vector<LcpRow> SegTree::Slcp(const Segment& probe, Timestamp now,
                                  DurationMs tau,
                                  std::vector<SegmentId>* expired) const {
  LcpTable table;
  SlcpInto(probe, now, tau, expired, &table);
  std::vector<LcpRow> rows;
  rows.reserve(table.rows.size());
  for (const LcpTable::Row& row : table.rows) {
    LcpRow out;
    out.segment = row.segment;
    out.stream = row.stream;
    out.start = row.start;
    out.end = row.end;
    out.common.assign(table.CommonBegin(row), table.CommonEnd(row));
    rows.push_back(std::move(out));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

double SegTree::CompressionRatio() const {
  if (total_objects_ == 0) return 0.0;
  return static_cast<double>(total_objects_ - num_nodes_) /
         static_cast<double>(total_objects_);
}

size_t SegTree::ArenaBytes() const {
  return pool_.SlabBytes() + pool_.FreeListBytes() + child_arena_.SlabBytes() +
         child_arena_.FreeListBytes() + tail_arena_.SlabBytes() +
         tail_arena_.FreeListBytes() + object_arena_.SlabBytes() +
         object_arena_.FreeListBytes();
}

size_t SegTree::MemoryUsage() const {
  // Every node struct and every child/tail array lives in the arenas, so
  // ArenaBytes() — slabs counted in full, live, free-listed and never-used
  // space alike — already covers the whole tree without walking it. That
  // memory is held either way, so the figure never undercounts.
  return ArenaBytes() + hlist_.MemoryUsage() + tlist_.MemoryUsage() +
         tail_of_.MemoryUsage() + registry_.MemoryUsage();
}

void SegTree::CheckInvariants() const {
  size_t walked = 0;
  std::unordered_map<const Node*, uint32_t> expected_count;
  std::unordered_map<ObjectId, size_t> object_nodes;

  // Pass 1: structural walk.
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < n->children.size(); ++i) {
      const Node* c = n->children[i];
      FCP_CHECK(c->parent == n);
      FCP_CHECK(c->parent_index == i);
      FCP_CHECK(c->count > 0);
      stack.push_back(c);
    }
    if (n != root_) {
      ++walked;
      ++object_nodes[n->object];
      expected_count[n] = 0;
    }
  }
  FCP_CHECK(walked == num_nodes_);

  // Pass 2: every live segment's path exists, matches its length, and
  // contributes to counts; distance is an upper bound along the path.
  uint64_t objects_total = 0;
  for (const auto& [id, info] : registry_) {
    Node* const* tail_slot = tail_of_.Find(id);
    FCP_CHECK(tail_slot != nullptr);
    const Node* n = *tail_slot;
    bool tail_entry_found = false;
    for (const TailEntry& t : n->tails) {
      if (t.segment == id) {
        FCP_CHECK(t.length == info.length);
        tail_entry_found = true;
      }
    }
    FCP_CHECK(tail_entry_found);
    for (uint32_t d = 0; d < info.length; ++d) {
      FCP_CHECK(n != nullptr && n != root_);
      FCP_CHECK(n->distance >= d);
      ++expected_count[n];
      n = n->parent;
    }
    objects_total += info.length;
  }
  FCP_CHECK(objects_total == total_objects_);
  for (const auto& [node, cnt] : expected_count) {
    FCP_CHECK(node->count == cnt);
  }
  FCP_CHECK(tail_of_.size() == registry_.size());

  // Pass 3: Hlist chains exactly cover the tree's nodes per object.
  size_t chained = 0;
  for (const auto& [object, head] : hlist_) {
    FCP_CHECK(head != nullptr);
    FCP_CHECK(head->hprev == nullptr);
    size_t len = 0;
    for (const Node* n = head; n != nullptr; n = n->hnext) {
      FCP_CHECK(n->object == object);
      if (n->hnext != nullptr) FCP_CHECK(n->hnext->hprev == n);
      ++len;
    }
    auto it = object_nodes.find(object);
    FCP_CHECK(it != object_nodes.end() && it->second == len);
    chained += len;
  }
  FCP_CHECK(chained == num_nodes_);
}

std::string SegTree::DebugString() const {
  std::ostringstream os;
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack{{root_, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node == root_) {
      os << "root\n";
    } else {
      os << std::string(static_cast<size_t>(f.depth) * 2, ' ') << "obj="
         << f.node->object << " (dist=" << f.node->distance
         << ", cnt=" << f.node->count << ")";
      for (const TailEntry& t : f.node->tails) {
        os << " tail{G" << t.segment << ", len=" << t.length << "}";
      }
      os << "\n";
    }
    // Push in reverse so children print in insertion order.
    for (size_t i = f.node->children.size(); i-- > 0;) {
      stack.push_back(Frame{f.node->children[i], f.depth + 1});
    }
  }
  return os.str();
}

}  // namespace fcp
