// The DI-Index (Section 3.2 of the paper): an inverted index mapping every
// object to the ids of the (not yet expired) segments containing it, plus a
// registry of segment metadata.
//
// Maintenance is the DI-Index's weak spot (the point of Fig. 5(c)-(e)):
// removing obsolete segments requires touching every posting list. We
// implement the paper's scheme: postings touched by mining are compacted
// opportunistically, and a periodic full sweep scans all entries.
//
// Posting lists live in a FlatMap and are *kept* when they drain empty
// (their capacity is the warm buffer the next occurrence of the object
// appends into), so a steady-state index performs no heap allocations:
// erase-on-empty would free the vector and re-pay the allocation on every
// recurrence of a cyclic object.

#ifndef FCP_INDEX_DI_INDEX_H_
#define FCP_INDEX_DI_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"
#include "util/flat_map.h"

namespace fcp {

/// Counters describing DI-Index activity.
struct DiIndexStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_expired = 0;
  uint64_t posting_entries_scanned = 0;  ///< work done by sweeps
  uint64_t full_sweeps = 0;
};

/// Inverted index object -> sorted vector of live SegmentIds.
class DiIndex {
 public:
  DiIndex() = default;
  DiIndex(const DiIndex&) = delete;
  DiIndex& operator=(const DiIndex&) = delete;

  /// Indexes a completed segment: appends its id to the posting list of each
  /// of its distinct objects.
  void Insert(const Segment& segment);

  /// Appends the ids of valid segments containing `object` at `now` to
  /// `*out` (cleared first; ascending id order), compacting the posting list
  /// in passing: expired ids found during the scan are dropped.
  void ValidSegmentsInto(ObjectId object, Timestamp now, DurationMs tau,
                         std::vector<SegmentId>* out);

  /// Allocating convenience wrapper over ValidSegmentsInto.
  std::vector<SegmentId> ValidSegments(ObjectId object, Timestamp now,
                                       DurationMs tau);

  /// Full expiry sweep over every posting list (the expensive maintenance
  /// path the paper measures). Returns the number of segments retired.
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  size_t num_segments() const { return registry_.size(); }
  /// Number of objects with at least one live posting entry (drained lists
  /// are retained for their capacity but not counted).
  size_t num_postings() const { return nonempty_postings_; }
  uint64_t total_entries() const { return total_entries_; }

  const SegmentRegistry& registry() const { return registry_; }
  const DiIndexStats& stats() const { return stats_; }

  /// Software-prefetches `object`'s posting-list slot (advisory, no
  /// observable effect); see FlatMap::PrefetchSlot.
  void PrefetchObject(ObjectId object) const { postings_.PrefetchSlot(object); }

  /// Analytic memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  FlatMap<ObjectId, std::vector<SegmentId>> postings_;
  SegmentRegistry registry_;
  uint64_t total_entries_ = 0;
  size_t nonempty_postings_ = 0;
  DiIndexStats stats_;
  std::vector<ObjectId> distinct_scratch_;   ///< Insert's distinct objects
  std::vector<SegmentId> expired_scratch_;   ///< RemoveExpired's worklist
};

}  // namespace fcp

#endif  // FCP_INDEX_DI_INDEX_H_
