// The DI-Index (Section 3.2 of the paper): an inverted index mapping every
// object to the ids of the (not yet expired) segments containing it, plus a
// registry of segment metadata.
//
// Maintenance is the DI-Index's weak spot (the point of Fig. 5(c)-(e)):
// removing obsolete segments requires touching every posting list. We
// implement the paper's scheme: postings touched by mining are compacted
// opportunistically, and a periodic full sweep scans all entries.
//
// Posting lists are PooledVecs backed by one ChunkArena: growth takes a
// power-of-two chunk from the arena's free lists instead of the heap, and a
// drained list hands its chunk back for ANY object to reuse. This keeps the
// steady state allocation-free like the previous keep-empty-vector policy,
// but it also keeps the per-miner allocation count flat in the shard count:
// S shard replicas each rebuild the same object universe, and with heap
// vectors every replica re-paid every posting's doubling chain (the per-op
// allocation growth visible in bench_hotpath_alloc at S=8), while an arena
// amortizes them all into a few slabs.

#ifndef FCP_INDEX_DI_INDEX_H_
#define FCP_INDEX_DI_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"
#include "util/arena.h"
#include "util/flat_map.h"

namespace fcp {

/// Counters describing DI-Index activity.
struct DiIndexStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_expired = 0;
  uint64_t posting_entries_scanned = 0;  ///< work done by sweeps
  uint64_t full_sweeps = 0;
};

/// Inverted index object -> sorted vector of live SegmentIds.
class DiIndex {
 public:
  DiIndex() = default;
  DiIndex(const DiIndex&) = delete;
  DiIndex& operator=(const DiIndex&) = delete;

  /// Indexes a completed segment: appends its id to the posting list of each
  /// of its distinct objects.
  void Insert(const Segment& segment);

  /// Appends the ids of valid segments containing `object` at `now` to
  /// `*out` (cleared first; ascending id order), compacting the posting list
  /// in passing: expired ids found during the scan are dropped.
  void ValidSegmentsInto(ObjectId object, Timestamp now, DurationMs tau,
                         std::vector<SegmentId>* out);

  /// Allocating convenience wrapper over ValidSegmentsInto.
  std::vector<SegmentId> ValidSegments(ObjectId object, Timestamp now,
                                       DurationMs tau);

  /// Full expiry sweep over every posting list (the expensive maintenance
  /// path the paper measures). Returns the number of segments retired.
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  size_t num_segments() const { return registry_.size(); }
  /// Number of objects with at least one live posting entry (drained lists
  /// are retained for their capacity but not counted).
  size_t num_postings() const { return nonempty_postings_; }
  uint64_t total_entries() const { return total_entries_; }

  const SegmentRegistry& registry() const { return registry_; }
  const DiIndexStats& stats() const { return stats_; }

  /// Software-prefetches `object`'s posting-list slot (advisory, no
  /// observable effect); see FlatMap::PrefetchSlot.
  void PrefetchObject(ObjectId object) const { postings_.PrefetchSlot(object); }

  /// Analytic memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  FlatMap<ObjectId, PooledVec<SegmentId>> postings_;
  ChunkArena<SegmentId> posting_arena_;
  SegmentRegistry registry_;
  uint64_t total_entries_ = 0;
  size_t nonempty_postings_ = 0;
  DiIndexStats stats_;
  std::vector<SegmentId> expired_scratch_;   ///< RemoveExpired's worklist
};

}  // namespace fcp

#endif  // FCP_INDEX_DI_INDEX_H_
