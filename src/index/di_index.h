// The DI-Index (Section 3.2 of the paper): an inverted index mapping every
// object to the ids of the (not yet expired) segments containing it, plus a
// registry of segment metadata.
//
// Maintenance is the DI-Index's weak spot (the point of Fig. 5(c)-(e)):
// removing obsolete segments requires touching every posting list. We
// implement the paper's scheme: postings touched by mining are compacted
// opportunistically, and a periodic full sweep scans all entries.

#ifndef FCP_INDEX_DI_INDEX_H_
#define FCP_INDEX_DI_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "index/segment_registry.h"
#include "stream/segment.h"

namespace fcp {

/// Counters describing DI-Index activity.
struct DiIndexStats {
  uint64_t segments_inserted = 0;
  uint64_t segments_expired = 0;
  uint64_t posting_entries_scanned = 0;  ///< work done by sweeps
  uint64_t full_sweeps = 0;
};

/// Inverted index object -> sorted vector of live SegmentIds.
class DiIndex {
 public:
  DiIndex() = default;
  DiIndex(const DiIndex&) = delete;
  DiIndex& operator=(const DiIndex&) = delete;

  /// Indexes a completed segment: appends its id to the posting list of each
  /// of its distinct objects.
  void Insert(const Segment& segment);

  /// Returns the ids of valid segments containing `object` at `now`
  /// (ascending id order), compacting the posting list in passing: expired
  /// ids found during the scan are dropped from the index.
  std::vector<SegmentId> ValidSegments(ObjectId object, Timestamp now,
                                       DurationMs tau);

  /// Full expiry sweep over every posting list (the expensive maintenance
  /// path the paper measures). Returns the number of segments retired.
  size_t RemoveExpired(Timestamp now, DurationMs tau);

  size_t num_segments() const { return registry_.size(); }
  size_t num_postings() const { return postings_.size(); }
  uint64_t total_entries() const { return total_entries_; }

  const SegmentRegistry& registry() const { return registry_; }
  const DiIndexStats& stats() const { return stats_; }

  /// Analytic memory footprint in bytes.
  size_t MemoryUsage() const;

 private:
  std::unordered_map<ObjectId, std::vector<SegmentId>> postings_;
  SegmentRegistry registry_;
  uint64_t total_entries_ = 0;
  DiIndexStats stats_;
};

}  // namespace fcp

#endif  // FCP_INDEX_DI_INDEX_H_
