// fcp::prof — an in-process continuous profiler (DESIGN.md §2.9): a
// signal-based sampling CPU profiler plus an off-CPU wait profiler, feeding
// the /pprof endpoints of the observability plane.
//
// CPU sampling: every registered thread gets a POSIX per-thread CPU-clock
// timer (timer_create + SIGEV_THREAD_ID) that delivers SIGPROF at the
// configured frequency *of that thread's CPU time* — a thread blocked on a
// condition variable burns no CPU and receives no signals, so the sample
// distribution is an on-CPU profile by construction. The signal handler
// walks the interrupted frame-pointer chain (the build keeps frame pointers
// when FCP_PROF is on) into a lock-free per-thread sample ring with a
// drop-oldest policy; it allocates nothing, takes no locks and calls no
// library function that could.
//
// Off-CPU: the pipeline's block points (BoundedQueue waits, merge stalls,
// steal idling) report their wall-clock wait time through RecordWaitNs into
// per-thread tag tables; the collector renders them as `wait;<tag>` pseudo
// stacks scaled to CPU-sample units so one folded profile shows where
// cycles AND wall-time go.
//
// Hot-path contract (mirrors trace.h):
//   - Profiler not armed: instrumented wait points cost one relaxed load.
//   - Armed: the SIGPROF handler is a bounded frame walk + plain stores and
//     one release store; wait points add two clock_gettime calls around a
//     wait that was going to block anyway.
//   - Compiled out (cmake -DFCP_PROF=OFF): the FCP_PROF_* macros expand to
//     nothing and every entry point is an inline no-op stub.
//
// Aggregation/symbolization (the collector side) is ordinary code: it runs
// on whatever thread calls CollectNow()/CaptureFoldedProfile (the obs poll
// thread, the --profile shutdown path, tests) and may allocate freely.

#ifndef FCP_PROF_PROF_H_
#define FCP_PROF_PROF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fcp {
namespace telemetry {
class MetricRegistry;
}  // namespace telemetry
}  // namespace fcp

namespace fcp::prof {

/// Whether the profiler is compiled into this build.
#if defined(FCP_PROF_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Max frames kept per sample (deeper stacks are truncated at the root end).
inline constexpr int kMaxFrames = 32;

/// Per-thread sample-ring capacity in samples. At 100 Hz a thread fills
/// this in ~20 s, so any collection cadence above 1/10 Hz never drops.
inline constexpr size_t kRingSlots = 2048;

#if !defined(FCP_PROF_DISABLED)

/// One relaxed load: true while the CPU profiler is armed. Wait-point
/// instrumentation gates its clock reads on this.
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
inline bool IsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

/// Registers the calling thread with the profiler for the scope's lifetime:
/// while the profiler is armed the thread has a sample ring and a per-thread
/// CPU-clock SIGPROF timer. Registration outside an armed window is a cheap
/// bookkeeping entry (no ring allocation). The name is copied. Threads that
/// never register are simply invisible to the profiler.
class ThreadScope {
 public:
  explicit ThreadScope(const char* name);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;
};

/// Arms CPU sampling at `hz` for every registered thread (and every thread
/// that registers while armed). Publishes profiler gauges into `metrics`
/// when non-null (fcp_prof_samples_total, fcp_prof_drops_total,
/// fcp_prof_threads, fcp_prof_symbol_cache_size). Returns false if already
/// armed or `hz` is out of [1, 1000].
bool StartCpuProfiler(int hz, telemetry::MetricRegistry* metrics = nullptr);

/// Disarms every per-thread timer. Samples already in the rings stay
/// available to CollectNow(). No-op when not armed.
void StopCpuProfiler();

/// True between StartCpuProfiler and StopCpuProfiler.
bool IsSampling();

/// The armed frequency (0 when not sampling).
int SamplingHz();

/// Drains every thread's sample ring into the cumulative stack trie and
/// folds the wait tables in. Called by CaptureFoldedProfile and the
/// --profile shutdown path; tests call it directly. Safe while sampling.
void CollectNow();

/// Cumulative folded profile since the last Reset: one line per distinct
/// stack, root-first, semicolon-separated, "frames... count\n", with
/// off-CPU wall-time rendered as `wait;<tag>` pseudo stacks scaled to
/// sample units (ns * hz / 1e9, so CPU and wait lines share a unit).
/// Implies CollectNow().
std::string FoldedProfile();

/// Arms (if needed), sleeps `seconds`, and returns the folded profile of
/// exactly that window (delta against the pre-sleep trie). When the
/// profiler was already armed it stays armed; otherwise it is started at
/// `hz` for the window and stopped after. Blocking — the obs endpoint that
/// calls this documents the poll-thread stall. Empty string on failure.
std::string CaptureFoldedProfile(int seconds, int hz = 100);

/// Records `ns` of off-CPU wall time against `tag` for the calling thread.
/// `tag` must have static storage duration (the pointer is the key). No-op
/// when the thread is unregistered. Callers gate on IsEnabled().
void RecordWaitNs(const char* tag, int64_t ns);

/// Aggregate counters (drained + in-flight samples are both counted once).
struct ProfStats {
  uint64_t samples = 0;        ///< samples collected into the trie
  uint64_t drops = 0;          ///< ring-wrap overwrites
  uint64_t threads = 0;        ///< currently registered threads
  uint64_t symbols_cached = 0; ///< resolved PC -> name cache entries
};
ProfStats Stats();

/// Drops the cumulative trie, wait totals and drop counters (not the
/// registrations). Tests.
void ResetProfile();

// --- Heap profiling (layered on util/alloc_counter.h's hook slot). ---------

/// Arms allocation-site sampling: roughly every `sample_bytes` of
/// cumulative allocation, the allocating thread's stack is captured (plain
/// frame walk, not a signal) and credited with the bytes since its last
/// sample. Requires the binary to have included util/alloc_counter.h (which
/// defines the counting operator new) — without it the hook never fires and
/// the heap profile is empty. No-op when already enabled.
void EnableHeapProfiler(size_t sample_bytes = 64 * 1024);
void DisableHeapProfiler();
bool HeapProfilerEnabled();

/// Folded allocation-site profile: "frames... bytes\n", root-first,
/// sampled bytes (scaled by nothing — the credit scheme makes the expected
/// value equal the true allocated bytes).
std::string HeapProfile();

// --- Crash-handler integration (satellite: trace black box). ---------------

/// JSON value describing the profiler's state and the last few samples of
/// every ring — spliced into the fatal-signal .crash.json by the trace
/// crash handler (trace::RegisterCrashAux). Reads rings racily; a torn
/// tail beats none. Exposed for tests.
std::string CrashJson();

/// The monotonic clock wait points use (exposed so instrumentation sites
/// and benches share one definition).
int64_t MonotonicNowNs();

#else  // FCP_PROF_DISABLED: every entry point is an inline no-op.

inline bool IsEnabled() { return false; }

class ThreadScope {
 public:
  explicit ThreadScope(const char*) {}
};

inline bool StartCpuProfiler(int, telemetry::MetricRegistry* = nullptr) {
  return false;
}
inline void StopCpuProfiler() {}
inline bool IsSampling() { return false; }
inline int SamplingHz() { return 0; }
inline void CollectNow() {}
inline std::string FoldedProfile() { return ""; }
inline std::string CaptureFoldedProfile(int, int = 100) { return ""; }
inline void RecordWaitNs(const char*, int64_t) {}

struct ProfStats {
  uint64_t samples = 0;
  uint64_t drops = 0;
  uint64_t threads = 0;
  uint64_t symbols_cached = 0;
};
inline ProfStats Stats() { return {}; }
inline void ResetProfile() {}

inline void EnableHeapProfiler(size_t = 64 * 1024) {}
inline void DisableHeapProfiler() {}
inline bool HeapProfilerEnabled() { return false; }
inline std::string HeapProfile() { return ""; }
inline std::string CrashJson() { return "{}"; }
inline int64_t MonotonicNowNs() { return 0; }

#endif  // FCP_PROF_DISABLED

/// Times one blocking wait and attributes it to `tag` (static storage).
/// Construct ONLY on a path that is about to block — the constructor reads
/// the clock when the profiler is armed. One relaxed load when it is not.
class WaitTimer {
 public:
  explicit WaitTimer(const char* tag) {
#if !defined(FCP_PROF_DISABLED)
    if (IsEnabled() && tag != nullptr) {
      tag_ = tag;
      start_ns_ = MonotonicNowNs();
    }
#else
    (void)tag;
#endif
  }
  ~WaitTimer() {
#if !defined(FCP_PROF_DISABLED)
    if (tag_ != nullptr) RecordWaitNs(tag_, MonotonicNowNs() - start_ns_);
#endif
  }
  WaitTimer(const WaitTimer&) = delete;
  WaitTimer& operator=(const WaitTimer&) = delete;

 private:
#if !defined(FCP_PROF_DISABLED)
  const char* tag_ = nullptr;
  int64_t start_ns_ = 0;
#endif
};

}  // namespace fcp::prof

#endif  // FCP_PROF_PROF_H_
