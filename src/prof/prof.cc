// fcp::prof implementation: per-thread SIGPROF sampling, lock-free sample
// rings, the stack-trie collector and lazy symbolization (DESIGN.md §2.9).
//
// Layering of signal-safety, strictest first:
//   1. SigprofHandler: atomics + a bounds-checked frame-pointer walk. No
//      locks, no allocation, no library calls. Sanitizer instrumentation is
//      disabled on the walker so raw stack loads are not checked against
//      shadow memory.
//   2. RecordWaitNs / the heap hook: run in normal thread context (not a
//      signal), use relaxed atomics / a recursion-guarded mutex.
//   3. Everything else (collection, symbolization, rendering): ordinary
//      code under the registry mutex, allocates freely, never called from
//      the hot path.

#include "prof/prof.h"

#if !defined(FCP_PROF_DISABLED)

#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <link.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "util/alloc_hook.h"

#if defined(__GNUC__) || defined(__clang__)
#define FCP_PROF_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#else
#define FCP_PROF_NO_SANITIZE
#endif

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace fcp::prof {
namespace {

// --- Per-thread state. -----------------------------------------------------

/// One ring slot. Every field is a relaxed atomic so the signal-context
/// writer and the collector reader never race in the C++ sense; `seq` is
/// the slot's absolute sample index, stored with release after the payload
/// so the collector can reject slots overwritten mid-read (counted as
/// drops, like any other wrap casualty).
struct Slot {
  std::atomic<uint64_t> seq{~uint64_t{0}};
  std::atomic<uint32_t> depth{0};
  std::atomic<uintptr_t> pcs[kMaxFrames];
};

/// Off-CPU accounting: one tag slot, claimed once by CAS on the tag
/// pointer, then bumped with relaxed adds. Tags are static-storage string
/// literals, so pointer identity is name identity.
struct WaitSlot {
  std::atomic<const char*> tag{nullptr};
  std::atomic<int64_t> ns{0};
  std::atomic<uint64_t> count{0};
};
constexpr size_t kWaitSlots = 16;

struct ThreadRec {
  std::string name;
  pid_t tid = 0;
  pthread_t pthread{};
  uintptr_t stack_lo = 0;  ///< lowest valid stack address
  uintptr_t stack_hi = 0;  ///< one past the highest
  /// Ring storage; allocated on first arming, released only at unregister.
  std::atomic<Slot*> slots{nullptr};
  std::atomic<uint64_t> head{0};  ///< next sample index (writer-owned)
  std::atomic<uint64_t> tail{0};  ///< first undrained index (collector)
  timer_t timer{};
  bool timer_armed = false;
  /// Set by ~ThreadScope: the thread is gone, so its pthread/tid must never
  /// be touched again (pthread_getcpuclockid on a joined thread is UB), but
  /// the record stays registered so its samples and wait totals still
  /// render. Guarded by ProfState::mu.
  bool retired = false;
  WaitSlot waits[kWaitSlots];
};

thread_local ThreadRec* tls_rec = nullptr;

// --- Stack trie. -----------------------------------------------------------

struct TrieNode {
  uintptr_t pc = 0;
  uint64_t self = 0;
  std::map<uintptr_t, size_t> kids;  ///< pc -> node index
};

struct Trie {
  /// Per thread-name root: name -> node index (node.pc unused at roots).
  std::map<std::string, size_t> roots;
  std::vector<TrieNode> nodes;

  size_t Child(size_t parent, uintptr_t pc) {
    auto [it, inserted] = nodes[parent].kids.try_emplace(pc, nodes.size());
    if (inserted) {
      const size_t idx = it->second;
      nodes.emplace_back();
      nodes[idx].pc = pc;
      return idx;
    }
    return it->second;
  }

  size_t Root(const std::string& name) {
    auto [it, inserted] = roots.try_emplace(name, nodes.size());
    if (inserted) nodes.emplace_back();
    return it->second;
  }

  /// Adds one sample: `pcs[0]` is the leaf; insertion is root-first.
  void Add(const std::string& thread_name, const uintptr_t* pcs,
           uint32_t depth, uint64_t weight) {
    size_t node = Root(thread_name);
    for (uint32_t i = depth; i-- > 0;) node = Child(node, pcs[i]);
    nodes[node].self += weight;
  }
};

// --- Symbolization. --------------------------------------------------------

/// The main executable's .symtab, loaded lazily: STT_FUNC symbols sorted by
/// (unbiased) address. dladdr only sees .dynsym, which misses every
/// internal-linkage function; parsing the symtab directly is what makes the
/// >= 95% symbolization bar reachable without external tooling.
struct MainSymtab {
  struct Sym {
    uintptr_t addr = 0;
    uintptr_t size = 0;
    uint32_t name = 0;  ///< offset into strtab
  };
  std::vector<Sym> syms;
  std::string strtab;
  uintptr_t bias = 0;
  bool loaded = false;
  /// Every loaded module's address range, so frames that neither the
  /// symtab nor dladdr can name still render as "[libc.so.6]" rather than
  /// a raw address (module identity is the useful 95% of the answer for
  /// libc thunks, vdso entries and PLT stubs).
  struct Module {
    uintptr_t lo = 0, hi = 0;
    std::string name;
  };
  std::vector<Module> modules;
};

int PhdrScanCallback(dl_phdr_info* info, size_t, void* data) {
  auto* out = static_cast<MainSymtab*>(data);
  // The first entry is the main executable; its dlpi_addr is the PIE load
  // bias (0 for non-PIE).
  if (out->modules.empty()) out->bias = info->dlpi_addr;
  MainSymtab::Module mod;
  for (int i = 0; i < info->dlpi_phnum; ++i) {
    const ElfW(Phdr)& ph = info->dlpi_phdr[i];
    if (ph.p_type != PT_LOAD) continue;
    const uintptr_t lo = info->dlpi_addr + ph.p_vaddr;
    const uintptr_t hi = lo + ph.p_memsz;
    if (mod.lo == 0 || lo < mod.lo) mod.lo = lo;
    if (hi > mod.hi) mod.hi = hi;
  }
  const char* name = info->dlpi_name;
  if (name == nullptr || name[0] == '\0') {
    mod.name = out->modules.empty() ? "exe" : "anon";
  } else {
    const char* slash = std::strrchr(name, '/');
    mod.name = slash != nullptr ? slash + 1 : name;
  }
  out->modules.push_back(std::move(mod));
  return 0;  // keep iterating
}

void LoadMainSymtab(MainSymtab* out) {
  out->loaded = true;
  dl_iterate_phdr(PhdrScanCallback, out);
  std::FILE* f = std::fopen("/proc/self/exe", "rb");
  if (f == nullptr) return;
  auto read_at = [&](long off, void* buf, size_t n) {
    return std::fseek(f, off, SEEK_SET) == 0 && std::fread(buf, 1, n, f) == n;
  };
  Elf64_Ehdr ehdr;
  if (!read_at(0, &ehdr, sizeof(ehdr)) ||
      std::memcmp(ehdr.e_ident, ELFMAG, SELFMAG) != 0 ||
      ehdr.e_ident[EI_CLASS] != ELFCLASS64) {
    std::fclose(f);
    return;
  }
  std::vector<Elf64_Shdr> shdrs(ehdr.e_shnum);
  if (!read_at(static_cast<long>(ehdr.e_shoff), shdrs.data(),
               shdrs.size() * sizeof(Elf64_Shdr))) {
    std::fclose(f);
    return;
  }
  for (const Elf64_Shdr& sh : shdrs) {
    if (sh.sh_type != SHT_SYMTAB || sh.sh_link >= shdrs.size()) continue;
    const Elf64_Shdr& str = shdrs[sh.sh_link];
    std::vector<Elf64_Sym> raw(sh.sh_size / sizeof(Elf64_Sym));
    out->strtab.resize(str.sh_size);
    if (!read_at(static_cast<long>(sh.sh_offset), raw.data(),
                 raw.size() * sizeof(Elf64_Sym)) ||
        !read_at(static_cast<long>(str.sh_offset), out->strtab.data(),
                 out->strtab.size())) {
      out->strtab.clear();
      break;
    }
    out->syms.reserve(raw.size());
    for (const Elf64_Sym& s : raw) {
      if (ELF64_ST_TYPE(s.st_info) != STT_FUNC || s.st_value == 0) continue;
      if (s.st_name >= out->strtab.size()) continue;
      out->syms.push_back({static_cast<uintptr_t>(s.st_value),
                           static_cast<uintptr_t>(s.st_size), s.st_name});
    }
    std::sort(out->syms.begin(), out->syms.end(),
              [](const MainSymtab::Sym& a, const MainSymtab::Sym& b) {
                return a.addr < b.addr;
              });
    break;
  }
  std::fclose(f);
}

/// Demangles and compacts: parameter list dropped, remaining spaces
/// removed, so a frame never contains the folded format's separators.
std::string TidyName(const char* mangled) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string name = (status == 0 && demangled != nullptr) ? demangled
                                                           : mangled;
  std::free(demangled);
  // Cut the parameter list but not "operator()" — find the first '(' that
  // is not part of an operator name.
  size_t cut = std::string::npos;
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] != '(') continue;
    if (i >= 8 && name.compare(i - 8, 8, "operator") == 0) {
      i += 1;  // skip the matching ')'
      continue;
    }
    cut = i;
    break;
  }
  if (cut != std::string::npos) name.resize(cut);
  name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
  std::replace(name.begin(), name.end(), ';', ':');
  return name;
}

// --- Global profiler state. ------------------------------------------------

struct HeapSite {
  uint64_t bytes = 0;
  uint64_t count = 0;
};

struct ProfState {
  std::mutex mu;  ///< guards everything below plus trie/symbol state
  std::vector<ThreadRec*> threads;
  int hz = 0;           ///< armed frequency (0 when idle)
  int last_hz = 100;    ///< scaling basis for wait units after Stop()
  bool sampling = false;
  uint64_t drops = 0;      ///< wrap + torn-slot casualties, collector-side
  uint64_t collected = 0;  ///< samples folded into the trie
  Trie trie;
  MainSymtab symtab;
  std::unordered_map<uintptr_t, std::string> symbol_cache;
  bool sigaction_installed = false;
  bool crash_aux_registered = false;

  // Profiler gauges (nullable; bound by the first Start with a registry).
  telemetry::Gauge* samples_gauge = nullptr;
  telemetry::Gauge* drops_gauge = nullptr;
  telemetry::Gauge* threads_gauge = nullptr;
  telemetry::Gauge* symcache_gauge = nullptr;

  // Heap profiler: folded stacks keyed by the symbolized frame path.
  std::mutex heap_mu;
  bool heap_enabled = false;
  size_t heap_sample_bytes = 64 * 1024;
  std::map<std::vector<uintptr_t>, HeapSite> heap_sites;
};

ProfState& State() {
  static ProfState* state = new ProfState();
  return *state;
}

int64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// --- The signal handler. ---------------------------------------------------

/// Walks the frame-pointer chain starting at (pc, fp), bounded by the
/// thread's stack extent. Safe against broken chains: every candidate frame
/// pointer is range- and alignment-checked before it is dereferenced, and
/// the walk only ever moves toward the stack base. Sanitizers are disabled
/// here: the loads are raw stack reads that ASan shadow checks would
/// misjudge and TSan would misreport (same-thread signal context).
FCP_PROF_NO_SANITIZE
uint32_t WalkStack(uintptr_t pc, uintptr_t fp, uintptr_t lo, uintptr_t hi,
                   uintptr_t* out) {
  uint32_t depth = 0;
  out[depth++] = pc;
  while (depth < static_cast<uint32_t>(kMaxFrames)) {
    if (fp < lo || fp + 2 * sizeof(uintptr_t) > hi ||
        (fp & (sizeof(uintptr_t) - 1)) != 0) {
      break;
    }
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t next_fp = frame[0];
    const uintptr_t ret = frame[1];
    if (ret < 0x1000) break;
    out[depth++] = ret;
    if (next_fp <= fp) break;  // chains must move toward the base
    fp = next_fp;
  }
  return depth;
}

FCP_PROF_NO_SANITIZE
void SigprofHandler(int, siginfo_t*, void* ucontext) {
  ThreadRec* rec = tls_rec;
  if (rec == nullptr) return;
  Slot* slots = rec->slots.load(std::memory_order_acquire);
  if (slots == nullptr) return;

  auto* uc = static_cast<ucontext_t*>(ucontext);
  uintptr_t pc = 0, fp = 0, sp = 0;
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#else
  return;  // unsupported architecture: no samples, everything else works
#endif

  uintptr_t pcs[kMaxFrames];
  const uintptr_t lo = sp != 0 ? sp : rec->stack_lo;
  const uint32_t depth = WalkStack(pc, fp, lo, rec->stack_hi, pcs);

  const uint64_t h = rec->head.load(std::memory_order_relaxed);
  Slot& slot = slots[h % kRingSlots];
  slot.depth.store(depth, std::memory_order_relaxed);
  for (uint32_t i = 0; i < depth; ++i) {
    slot.pcs[i].store(pcs[i], std::memory_order_relaxed);
  }
  slot.seq.store(h, std::memory_order_release);
  rec->head.store(h + 1, std::memory_order_release);
}

// --- Timer plumbing. -------------------------------------------------------

bool ArmTimerLocked(ThreadRec* rec, int hz) {
  if (rec->retired) return false;
  if (rec->timer_armed) return true;
  if (rec->slots.load(std::memory_order_relaxed) == nullptr) {
    rec->slots.store(new Slot[kRingSlots], std::memory_order_release);
  }
  clockid_t clock;
  if (pthread_getcpuclockid(rec->pthread, &clock) != 0) return false;
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
#if defined(sigev_notify_thread_id)
  sev.sigev_notify_thread_id = rec->tid;
#else
  sev._sigev_un._tid = rec->tid;
#endif
  if (timer_create(clock, &sev, &rec->timer) != 0) return false;
  const long interval_ns = 1000000000L / hz;
  itimerspec its{};
  its.it_interval.tv_sec = interval_ns / 1000000000L;
  its.it_interval.tv_nsec = interval_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(rec->timer, 0, &its, nullptr) != 0) {
    timer_delete(rec->timer);
    return false;
  }
  rec->timer_armed = true;
  return true;
}

void DisarmTimerLocked(ThreadRec* rec) {
  if (!rec->timer_armed) return;
  timer_delete(rec->timer);
  rec->timer_armed = false;
}

void InstallSigactionLocked(ProfState& state) {
  if (state.sigaction_installed) return;
  struct sigaction sa{};
  sa.sa_sigaction = SigprofHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, nullptr);
  state.sigaction_installed = true;
}

// --- Collection (registry lock held). --------------------------------------

void DrainRecLocked(ProfState& state, ThreadRec* rec) {
  Slot* slots = rec->slots.load(std::memory_order_acquire);
  if (slots == nullptr) return;
  const uint64_t h = rec->head.load(std::memory_order_acquire);
  uint64_t t = rec->tail.load(std::memory_order_relaxed);
  if (h - t > kRingSlots) {
    state.drops += h - kRingSlots - t;
    t = h - kRingSlots;
  }
  uintptr_t pcs[kMaxFrames];
  for (uint64_t i = t; i < h; ++i) {
    Slot& slot = slots[i % kRingSlots];
    const uint32_t depth =
        std::min(slot.depth.load(std::memory_order_relaxed),
                 static_cast<uint32_t>(kMaxFrames));
    for (uint32_t k = 0; k < depth; ++k) {
      pcs[k] = slot.pcs[k].load(std::memory_order_relaxed);
    }
    // The writer lapped this slot mid-copy: its payload may mix two
    // samples. Reject it; it is one more wrap casualty.
    if (slot.seq.load(std::memory_order_acquire) != i || depth == 0) {
      ++state.drops;
      continue;
    }
    state.trie.Add(rec->name, pcs, depth, 1);
    ++state.collected;
  }
  rec->tail.store(h, std::memory_order_relaxed);
}

void CollectLocked(ProfState& state) {
  for (ThreadRec* rec : state.threads) DrainRecLocked(state, rec);
  if (state.samples_gauge != nullptr) {
    state.samples_gauge->Set(static_cast<int64_t>(state.collected));
    state.drops_gauge->Set(static_cast<int64_t>(state.drops));
    state.threads_gauge->Set(static_cast<int64_t>(state.threads.size()));
    state.symcache_gauge->Set(
        static_cast<int64_t>(state.symbol_cache.size()));
  }
}

const std::string& SymbolizeLocked(ProfState& state, uintptr_t pc) {
  auto it = state.symbol_cache.find(pc);
  if (it != state.symbol_cache.end()) return it->second;
  if (!state.symtab.loaded) LoadMainSymtab(&state.symtab);
  std::string name;
  // Return addresses point one past the call; back up one byte so a call
  // that ends a function does not attribute to the next symbol.
  const uintptr_t lookup = pc - 1;
  const MainSymtab& tab = state.symtab;
  if (!tab.syms.empty() && lookup >= tab.bias) {
    const uintptr_t unbiased = lookup - tab.bias;
    auto sym = std::upper_bound(
        tab.syms.begin(), tab.syms.end(), unbiased,
        [](uintptr_t v, const MainSymtab::Sym& s) { return v < s.addr; });
    if (sym != tab.syms.begin()) {
      --sym;
      const uintptr_t size = sym->size != 0 ? sym->size : 4096;
      if (unbiased < sym->addr + size) {
        name = TidyName(tab.strtab.c_str() + sym->name);
      }
    }
  }
  if (name.empty()) {
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
        info.dli_sname != nullptr) {
      name = TidyName(info.dli_sname);
    }
  }
  if (name.empty()) {
    for (const MainSymtab::Module& mod : tab.modules) {
      if (lookup >= mod.lo && lookup < mod.hi) {
        name = "[" + mod.name + "]";
        break;
      }
    }
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(pc));
    name = buf;
  }
  return state.symbol_cache.emplace(pc, std::move(name)).first->second;
}

void FoldNodeLocked(ProfState& state, size_t node, std::string* path,
                    std::map<std::string, uint64_t>* out) {
  const size_t base = path->size();
  const TrieNode& n = state.trie.nodes[node];
  if (n.self > 0) (*out)[*path] += n.self;
  for (const auto& [pc, kid] : n.kids) {
    path->push_back(';');
    path->append(SymbolizeLocked(state, pc));
    FoldNodeLocked(state, kid, path, out);
    path->resize(base);
  }
}

/// Cumulative folded counts: CPU stacks plus `wait;<tag>` pseudo stacks
/// scaled to sample units so both kinds share one denominator.
std::map<std::string, uint64_t> FoldedCountsLocked(ProfState& state) {
  std::map<std::string, uint64_t> out;
  std::string path;
  for (const auto& [name, root] : state.trie.roots) {
    path.assign(name);
    FoldNodeLocked(state, root, &path, &out);
    path.clear();
  }
  const int hz = state.hz != 0 ? state.hz : state.last_hz;
  for (ThreadRec* rec : state.threads) {
    for (const WaitSlot& w : rec->waits) {
      const char* tag = w.tag.load(std::memory_order_acquire);
      if (tag == nullptr) continue;
      const int64_t ns = w.ns.load(std::memory_order_relaxed);
      const uint64_t units = static_cast<uint64_t>(
          static_cast<double>(ns) * hz / 1e9);
      if (units > 0) out[std::string("wait;") + tag] += units;
    }
  }
  return out;
}

std::string RenderFolded(const std::map<std::string, uint64_t>& counts) {
  std::string out;
  for (const auto& [stack, n] : counts) {
    out += stack;
    out += ' ';
    out += std::to_string(n);
    out += '\n';
  }
  return out;
}

// --- Heap sampling hook. ---------------------------------------------------

thread_local int64_t tls_heap_credit = 0;
thread_local bool tls_in_heap_hook = false;

/// Stack bounds for heap sampling on threads that never registered with
/// the profiler (cached per thread; pthread_getattr_np reads /proc once).
struct StackBounds {
  uintptr_t lo = 0, hi = 0;
};
StackBounds QueryStackBounds() {
  StackBounds b;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      b.lo = reinterpret_cast<uintptr_t>(addr);
      b.hi = b.lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  return b;
}

void HeapHook(std::size_t size) {
  if (tls_in_heap_hook) return;
  tls_heap_credit -= static_cast<int64_t>(size);
  if (tls_heap_credit > 0) return;
  tls_in_heap_hook = true;
  ProfState& state = State();
  // Everything below may allocate; the recursion guard makes that safe.
  static thread_local StackBounds bounds = QueryStackBounds();
  uintptr_t pcs[kMaxFrames];
  const uintptr_t fp =
      reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const uint32_t depth = WalkStack(
      reinterpret_cast<uintptr_t>(
          __builtin_extract_return_addr(__builtin_return_address(0))),
      fp, fp, bounds.hi, pcs);
  {
    std::lock_guard<std::mutex> lock(state.heap_mu);
    if (state.heap_enabled) {
      // Credit the full deficit plus one sampling interval: the expected
      // accounted bytes equal the true allocation volume.
      const uint64_t credited = static_cast<uint64_t>(
          static_cast<int64_t>(state.heap_sample_bytes) - tls_heap_credit);
      HeapSite& site =
          state.heap_sites[std::vector<uintptr_t>(pcs, pcs + depth)];
      site.bytes += credited;
      site.count += 1;
      tls_heap_credit = static_cast<int64_t>(state.heap_sample_bytes);
    }
  }
  tls_in_heap_hook = false;
}

}  // namespace

// --- Public API. -----------------------------------------------------------

int64_t MonotonicNowNs() { return NowNs(); }

ThreadScope::ThreadScope(const char* name) {
  auto* rec = new ThreadRec();
  rec->name = name != nullptr ? name : "thread";
  rec->tid = static_cast<pid_t>(syscall(SYS_gettid));
  rec->pthread = pthread_self();
  const StackBounds bounds = QueryStackBounds();
  rec->stack_lo = bounds.lo;
  rec->stack_hi = bounds.hi;
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.threads.push_back(rec);
  tls_rec = rec;
  if (state.sampling) ArmTimerLocked(rec, state.hz);
}

ThreadScope::~ThreadScope() {
  ProfState& state = State();
  ThreadRec* rec = tls_rec;
  if (rec == nullptr) return;
  std::lock_guard<std::mutex> lock(state.mu);
  DisarmTimerLocked(rec);
  rec->retired = true;  // a later StartCpuProfiler must not re-arm it
  tls_rec = nullptr;  // a straggler SIGPROF after this is a no-op
  DrainRecLocked(state, rec);  // keep the thread's samples
  // Fold the thread's wait totals into a long-lived anonymous record? No:
  // wait totals render from live records, so drain them into the trie-side
  // map by re-tagging under a retired record is overkill — instead keep
  // the record alive but remove the timer; it is owned by the registry
  // until ResetProfile. Cheap (a few hundred bytes plus the ring).
  // The record stays in state.threads so FoldedCounts still sees its waits.
  (void)0;
}

bool StartCpuProfiler(int hz, telemetry::MetricRegistry* metrics) {
  if (hz < 1 || hz > 1000) return false;
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.sampling) return false;
  InstallSigactionLocked(state);
  if (!state.crash_aux_registered) {
    trace::RegisterCrashAux("profiler", &CrashJson);
    state.crash_aux_registered = true;
  }
  if (metrics != nullptr && state.samples_gauge == nullptr) {
    state.samples_gauge = metrics->GetGauge("fcp_prof_samples_total");
    state.drops_gauge = metrics->GetGauge("fcp_prof_drops_total");
    state.threads_gauge = metrics->GetGauge("fcp_prof_threads");
    state.symcache_gauge = metrics->GetGauge("fcp_prof_symbol_cache_size");
  }
  state.hz = hz;
  state.last_hz = hz;
  state.sampling = true;
  for (ThreadRec* rec : state.threads) ArmTimerLocked(rec, hz);
  EnabledFlag().store(true, std::memory_order_relaxed);
  return true;
}

void StopCpuProfiler() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.sampling) return;
  EnabledFlag().store(false, std::memory_order_relaxed);
  for (ThreadRec* rec : state.threads) DisarmTimerLocked(rec);
  state.sampling = false;
  state.hz = 0;
}

bool IsSampling() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.sampling;
}

int SamplingHz() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.hz;
}

void CollectNow() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  CollectLocked(state);
}

std::string FoldedProfile() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  CollectLocked(state);
  return RenderFolded(FoldedCountsLocked(state));
}

std::string CaptureFoldedProfile(int seconds, int hz) {
  if (seconds < 1) seconds = 1;
  if (seconds > 60) seconds = 60;
  const bool was_sampling = IsSampling();
  if (!was_sampling && !StartCpuProfiler(hz)) return "";
  std::map<std::string, uint64_t> before;
  {
    ProfState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    CollectLocked(state);
    before = FoldedCountsLocked(state);
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  std::map<std::string, uint64_t> after;
  {
    ProfState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    CollectLocked(state);
    after = FoldedCountsLocked(state);
  }
  if (!was_sampling) StopCpuProfiler();
  std::map<std::string, uint64_t> delta;
  for (const auto& [stack, n] : after) {
    const auto it = before.find(stack);
    const uint64_t prev = it != before.end() ? it->second : 0;
    if (n > prev) delta[stack] = n - prev;
  }
  return RenderFolded(delta);
}

void RecordWaitNs(const char* tag, int64_t ns) {
  ThreadRec* rec = tls_rec;
  if (rec == nullptr || tag == nullptr || ns <= 0) return;
  for (WaitSlot& w : rec->waits) {
    const char* cur = w.tag.load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (!w.tag.compare_exchange_strong(cur, tag,
                                         std::memory_order_acq_rel)) {
        if (cur != tag) continue;
      }
    } else if (cur != tag) {
      continue;
    }
    w.ns.fetch_add(ns, std::memory_order_relaxed);
    w.count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // More than kWaitSlots distinct tags on one thread: drop silently.
}

ProfStats Stats() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  CollectLocked(state);
  ProfStats s;
  s.samples = state.collected;
  s.drops = state.drops;
  s.threads = state.threads.size();
  s.symbols_cached = state.symbol_cache.size();
  return s;
}

void ResetProfile() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (ThreadRec* rec : state.threads) {
    rec->tail.store(rec->head.load(std::memory_order_acquire),
                    std::memory_order_relaxed);
    for (WaitSlot& w : rec->waits) {
      w.ns.store(0, std::memory_order_relaxed);
      w.count.store(0, std::memory_order_relaxed);
    }
  }
  state.trie = Trie();
  state.collected = 0;
  state.drops = 0;
  std::lock_guard<std::mutex> heap_lock(state.heap_mu);
  state.heap_sites.clear();
}

void EnableHeapProfiler(size_t sample_bytes) {
  ProfState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.heap_mu);
    if (state.heap_enabled) return;
    state.heap_enabled = true;
    state.heap_sample_bytes = sample_bytes > 0 ? sample_bytes : 1;
  }
  alloc_hook::AllocHookSlot().store(&HeapHook, std::memory_order_release);
}

void DisableHeapProfiler() {
  ProfState& state = State();
  alloc_hook::AllocHookSlot().store(nullptr, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state.heap_mu);
  state.heap_enabled = false;
}

bool HeapProfilerEnabled() {
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.heap_mu);
  return state.heap_enabled;
}

std::string HeapProfile() {
  ProfState& state = State();
  // Copy the sites under heap_mu, symbolize under mu (never hold both in
  // the other order anywhere).
  std::map<std::vector<uintptr_t>, HeapSite> sites;
  {
    std::lock_guard<std::mutex> lock(state.heap_mu);
    sites = state.heap_sites;
  }
  std::map<std::string, uint64_t> folded;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    std::string path;
    for (const auto& [pcs, site] : sites) {
      path.clear();
      for (size_t i = pcs.size(); i-- > 0;) {
        if (!path.empty()) path.push_back(';');
        path.append(SymbolizeLocked(state, pcs[i]));
      }
      if (!path.empty()) folded[path] += site.bytes;
    }
  }
  return RenderFolded(folded);
}

std::string CrashJson() {
  // Best-effort, mirrors the trace black box's stance: takes the registry
  // mutex and allocates — acceptable in a crash path that already does.
  ProfState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::string out = "{\"sampling\":";
  out += state.sampling ? "true" : "false";
  out += ",\"hz\":" + std::to_string(state.hz);
  out += ",\"collected\":" + std::to_string(state.collected);
  out += ",\"drops\":" + std::to_string(state.drops);
  out += ",\"threads\":[";
  bool first_thread = true;
  constexpr uint64_t kTailCap = 16;
  char hex[32];
  for (ThreadRec* rec : state.threads) {
    if (!first_thread) out += ',';
    first_thread = false;
    out += "{\"name\":\"";
    out += rec->name;  // thread names are our own identifiers, JSON-clean
    out += "\",\"tid\":" + std::to_string(rec->tid);
    const uint64_t h = rec->head.load(std::memory_order_acquire);
    out += ",\"samples\":" + std::to_string(h);
    out += ",\"tail\":[";
    Slot* slots = rec->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      uint64_t from = h > kTailCap ? h - kTailCap : 0;
      bool first_sample = true;
      for (uint64_t i = from; i < h; ++i) {
        Slot& slot = slots[i % kRingSlots];
        if (slot.seq.load(std::memory_order_acquire) != i) continue;
        if (!first_sample) out += ',';
        first_sample = false;
        out += '[';
        const uint32_t depth =
            std::min(slot.depth.load(std::memory_order_relaxed),
                     static_cast<uint32_t>(kMaxFrames));
        for (uint32_t k = 0; k < depth; ++k) {
          if (k > 0) out += ',';
          std::snprintf(
              hex, sizeof(hex), "\"0x%zx\"",
              static_cast<size_t>(
                  slot.pcs[k].load(std::memory_order_relaxed)));
          out += hex;
        }
        out += ']';
      }
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace fcp::prof

#endif  // !FCP_PROF_DISABLED
