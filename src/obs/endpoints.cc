#include "obs/endpoints.h"

#include "obs/obs_server.h"
#include "obs/watchdog.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace fcp::obs {
namespace {

constexpr char kTextPlain[] = "text/plain; charset=utf-8";
constexpr char kAppJson[] = "application/json";
/// The content type Prometheus scrapers negotiate for the 0.0.4 text format.
constexpr char kPromText[] = "text/plain; version=0.0.4; charset=utf-8";

void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string TracezJson() {
  std::string out = "{\"compiled_in\":";
  out += trace::kCompiledIn ? "true" : "false";
  out += ",\"enabled\":";
  out += trace::IsEnabled() ? "true" : "false";
  out += ",\"slow_op_threshold_ns\":";
  out += std::to_string(trace::SlowOpThresholdNs());
  out += ",\"slow_op_dumps\":";
  out += std::to_string(trace::SlowOpDumpCount());
  out += ",\"recent_slow_ops\":[";
  bool first = true;
  for (const trace::SlowOpSummary& s : trace::RecentSlowOps()) {
    if (!first) out += ',';
    first = false;
    out += "{\"captured_unix_ms\":" + std::to_string(s.captured_unix_ms);
    out += ",\"op\":";
    AppendJsonEscaped(&out, s.op);
    out += ",\"duration_ns\":" + std::to_string(s.duration_ns);
    out += ",\"miner\":";
    AppendJsonEscaped(&out, s.miner);
    out += ",\"shard\":" + std::to_string(s.shard);
    out += ",\"segment_id\":" + std::to_string(s.segment_id);
    out += ",\"segment_length\":" + std::to_string(s.segment_length);
    out += ",\"dump_path\":";
    AppendJsonEscaped(&out, s.dump_path);
    out += '}';
  }
  out += "]}";
  return out;
}

void InstallStandardEndpoints(ObsServer& server, EndpointSources sources) {
  telemetry::MetricRegistry* registry = sources.registry;
  Watchdog* watchdog = sources.watchdog;
  auto refresh = sources.refresh;
  auto pipeline_status = sources.pipeline_status;

  server.SetHandler("/metrics", [registry, refresh]() {
    if (refresh) refresh();
    return HttpResponse{200, kPromText,
                        registry != nullptr ? registry->ToPrometheus() : ""};
  });

  server.SetHandler("/varz", [registry, refresh]() {
    if (refresh) refresh();
    return HttpResponse{200, kAppJson,
                        registry != nullptr ? registry->ToJson() : "{}"};
  });

  server.SetHandler("/statusz", [pipeline_status, watchdog]() {
    std::string body = "{\"pipeline\":";
    body += pipeline_status ? pipeline_status() : "{}";
    body += ",\"watchdog\":";
    body += watchdog != nullptr ? watchdog->StatusJson() : "{}";
    body += '}';
    return HttpResponse{200, kAppJson, std::move(body)};
  });

  server.SetHandler("/healthz", [watchdog]() {
    if (watchdog == nullptr) {
      return HttpResponse{200, kTextPlain, "ok\n"};
    }
    const HealthState state = watchdog->state();
    const int status = state == HealthState::kStalled ? 503 : 200;
    std::string body(HealthStateName(state));
    body += '\n';
    return HttpResponse{status, kTextPlain, std::move(body)};
  });

  server.SetHandler("/readyz", [watchdog]() {
    if (watchdog == nullptr) {
      return HttpResponse{200, kTextPlain, "ok\n"};
    }
    if (watchdog->ready()) {
      return HttpResponse{200, kTextPlain, "ready\n"};
    }
    std::string body = "not ready (";
    body += HealthStateName(watchdog->state());
    body += ")\n";
    return HttpResponse{503, kTextPlain, std::move(body)};
  });

  server.SetHandler("/tracez", []() {
    return HttpResponse{200, kAppJson, TracezJson()};
  });

  // A tiny index so a human hitting the root sees what is available.
  server.SetHandler("/", []() {
    return HttpResponse{
        200, kTextPlain,
        "fcp observability endpoints:\n"
        "  /metrics  Prometheus 0.0.4 text\n"
        "  /varz     flat JSON metric snapshot\n"
        "  /statusz  pipeline topology + watchdog stage table\n"
        "  /healthz  liveness (503 when stalled)\n"
        "  /readyz   readiness (503 while starting or stalled)\n"
        "  /tracez   flight-recorder slow-op summaries\n"};
  });
}

}  // namespace fcp::obs
