#include "obs/endpoints.h"

#include <cstdlib>

#include "obs/obs_server.h"
#include "obs/watchdog.h"
#include "prof/prof.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace fcp::obs {
namespace {

constexpr char kTextPlain[] = "text/plain; charset=utf-8";
constexpr char kAppJson[] = "application/json";
/// The content type Prometheus scrapers negotiate for the 0.0.4 text format.
constexpr char kPromText[] = "text/plain; version=0.0.4; charset=utf-8";

void AppendJsonEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Pulls an integer "key=value" out of a raw query string; `fallback` when
/// absent or unparseable. Good enough for the /pprof parameters — no
/// percent-decoding (the keys and values are plain tokens).
int QueryInt(std::string_view query, std::string_view key, int fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string value(pair.substr(eq + 1));
      char* end = nullptr;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (end != value.c_str() && *end == '\0') {
        return static_cast<int>(parsed);
      }
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

std::string TracezJson() {
  std::string out = "{\"compiled_in\":";
  out += trace::kCompiledIn ? "true" : "false";
  out += ",\"enabled\":";
  out += trace::IsEnabled() ? "true" : "false";
  out += ",\"slow_op_threshold_ns\":";
  out += std::to_string(trace::SlowOpThresholdNs());
  out += ",\"slow_op_dumps\":";
  out += std::to_string(trace::SlowOpDumpCount());
  out += ",\"recent_slow_ops\":[";
  bool first = true;
  for (const trace::SlowOpSummary& s : trace::RecentSlowOps()) {
    if (!first) out += ',';
    first = false;
    out += "{\"captured_unix_ms\":" + std::to_string(s.captured_unix_ms);
    out += ",\"op\":";
    AppendJsonEscaped(&out, s.op);
    out += ",\"duration_ns\":" + std::to_string(s.duration_ns);
    out += ",\"miner\":";
    AppendJsonEscaped(&out, s.miner);
    out += ",\"shard\":" + std::to_string(s.shard);
    out += ",\"segment_id\":" + std::to_string(s.segment_id);
    out += ",\"segment_length\":" + std::to_string(s.segment_length);
    out += ",\"dump_path\":";
    AppendJsonEscaped(&out, s.dump_path);
    out += '}';
  }
  out += "]}";
  return out;
}

void InstallStandardEndpoints(ObsServer& server, EndpointSources sources) {
  telemetry::MetricRegistry* registry = sources.registry;
  Watchdog* watchdog = sources.watchdog;
  auto refresh = sources.refresh;
  auto pipeline_status = sources.pipeline_status;

  server.SetHandler("/metrics", [registry, refresh]() {
    if (refresh) refresh();
    return HttpResponse{200, kPromText,
                        registry != nullptr ? registry->ToPrometheus() : ""};
  });

  server.SetHandler("/varz", [registry, refresh]() {
    if (refresh) refresh();
    return HttpResponse{200, kAppJson,
                        registry != nullptr ? registry->ToJson() : "{}"};
  });

  server.SetHandler("/statusz", [pipeline_status, watchdog]() {
    std::string body = "{\"pipeline\":";
    body += pipeline_status ? pipeline_status() : "{}";
    body += ",\"watchdog\":";
    body += watchdog != nullptr ? watchdog->StatusJson() : "{}";
    body += '}';
    return HttpResponse{200, kAppJson, std::move(body)};
  });

  server.SetHandler("/healthz", [watchdog]() {
    if (watchdog == nullptr) {
      return HttpResponse{200, kTextPlain, "ok\n"};
    }
    const HealthState state = watchdog->state();
    const int status = state == HealthState::kStalled ? 503 : 200;
    std::string body(HealthStateName(state));
    body += '\n';
    return HttpResponse{status, kTextPlain, std::move(body)};
  });

  server.SetHandler("/readyz", [watchdog]() {
    if (watchdog == nullptr) {
      return HttpResponse{200, kTextPlain, "ok\n"};
    }
    if (watchdog->ready()) {
      return HttpResponse{200, kTextPlain, "ready\n"};
    }
    std::string body = "not ready (";
    body += HealthStateName(watchdog->state());
    body += ")\n";
    return HttpResponse{503, kTextPlain, std::move(body)};
  });

  server.SetHandler("/tracez", []() {
    return HttpResponse{200, kAppJson, TracezJson()};
  });

  // CPU profile of the next N seconds in collapsed/folded-stack format
  // (flamegraph.pl / speedscope / inferno consume it directly). Blocks the
  // obs poll thread for the window — scrapes queue behind it, by design:
  // one poll thread, and a profile capture is an interactive operation.
  server.SetQueryHandler("/pprof/profile", [registry](std::string_view q) {
    if (!prof::kCompiledIn) {
      return HttpResponse{501, kTextPlain,
                          "profiler compiled out (-DFCP_PROF=OFF)\n"};
    }
    int seconds = QueryInt(q, "seconds", 2);
    if (seconds < 1) seconds = 1;
    if (seconds > 60) seconds = 60;
    int hz = QueryInt(q, "hz", 100);
    if (hz < 1 || hz > 1000) hz = 100;
    // Bind the profiler gauges on the first capture if nothing armed them.
    if (registry != nullptr && !prof::IsSampling()) {
      prof::StartCpuProfiler(hz, registry);
      prof::StopCpuProfiler();
    }
    return HttpResponse{200, kTextPlain,
                        prof::CaptureFoldedProfile(seconds, hz)};
  });

  // Allocation-site profile (folded stacks, sampled bytes). Empty until
  // the binary arms prof::EnableHeapProfiler (fcpmine --profile does).
  server.SetHandler("/pprof/heap", []() {
    if (!prof::kCompiledIn) {
      return HttpResponse{501, kTextPlain,
                          "profiler compiled out (-DFCP_PROF=OFF)\n"};
    }
    if (!prof::HeapProfilerEnabled()) {
      return HttpResponse{200, kTextPlain,
                          "# heap profiler not enabled (run with --profile "
                          "or call prof::EnableHeapProfiler)\n"};
    }
    return HttpResponse{200, kTextPlain, prof::HeapProfile()};
  });

  // A tiny index so a human hitting the root sees what is available.
  server.SetHandler("/", []() {
    return HttpResponse{
        200, kTextPlain,
        "fcp observability endpoints:\n"
        "  /metrics        Prometheus 0.0.4 text\n"
        "  /varz           flat JSON metric snapshot\n"
        "  /statusz        pipeline topology + watchdog stage table\n"
        "  /healthz        liveness (503 when stalled)\n"
        "  /readyz         readiness (503 while starting or stalled)\n"
        "  /tracez         flight-recorder slow-op summaries\n"
        "  /pprof/profile  folded CPU+wait profile (?seconds=N&hz=F)\n"
        "  /pprof/heap     folded allocation-site profile\n"};
  });
}

}  // namespace fcp::obs
