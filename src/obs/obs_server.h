// ObsServer: an embedded, read-only HTTP/1.1 observability endpoint
// (DESIGN.md §2.8).
//
// One epoll-driven poll thread serves GET/HEAD requests against a fixed
// handler table (/metrics, /varz, /statusz, /healthz, /readyz, /tracez).
// Every handler produces a self-contained snapshot string, so a scrape
// never holds a lock the mining pipeline contends on and never blocks the
// hot path — the only coupling is the relaxed atomics and snapshot mutexes
// the telemetry layer already exposes. Connections are bounded; requests
// over the cap get 503 and malformed or oversized requests are rejected
// without ever touching a handler. No keep-alive: one request, one
// response, close — the simplest thing that is correct for scrapers, and
// the connection substrate the future ingest daemon's admin port reuses.
//
// Lifetime: handlers are registered before Start() and may capture pointers
// into the engine; the owner must Stop() the server before those objects
// are destroyed (fcpmine stops it after Finish(), before the engine leaves
// scope).

#ifndef FCP_OBS_OBS_SERVER_H_
#define FCP_OBS_OBS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fcp {

namespace telemetry {
class MetricRegistry;
class Counter;
class LatencyHistogram;
}  // namespace telemetry

namespace obs {

/// What a handler returns; the server renders the HTTP envelope.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct ObsServerOptions {
  /// Bind address. The default is loopback-only: the observability plane is
  /// unauthenticated, so exposing it beyond the host is an explicit choice.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is published by port()).
  uint16_t port = 0;
  /// Concurrent connection cap; one past the cap is accepted, told 503, and
  /// closed, so a scraper stampede degrades loudly instead of queueing.
  int max_connections = 64;
  /// Request-head size cap; longer requests get 431 and a close.
  size_t max_request_bytes = 8192;
  /// Where to count scrape traffic (nullable).
  telemetry::MetricRegistry* metrics = nullptr;
};

class ObsServer {
 public:
  using Handler = std::function<HttpResponse()>;
  /// A handler that also sees the request's raw query string (no '?').
  using QueryHandler = std::function<HttpResponse(std::string_view query)>;

  explicit ObsServer(ObsServerOptions options = {});
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Registers `handler` for GET/HEAD `path` (exact match, e.g. "/metrics").
  /// Must be called before Start().
  void SetHandler(std::string path, Handler handler);

  /// Like SetHandler for endpoints that take parameters (e.g.
  /// "/pprof/profile?seconds=5"). A path has either a Handler or a
  /// QueryHandler; the latter wins if both are set.
  void SetQueryHandler(std::string path, QueryHandler handler);

  /// Binds, listens and starts the poll thread. Returns an error Status if
  /// the address cannot be bound.
  Status Start();

  /// Closes the listener, drains connections and joins the poll thread.
  /// Idempotent; safe to call without a successful Start().
  void Stop();

  /// The bound port (after Start(); useful with port=0).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Total requests answered (any status), for tests.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Connections refused with 503 because max_connections was reached.
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void Loop();
  void AcceptAll();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Parses conn->in and stages the response; returns false if the
  /// connection should be closed with nothing (peer hung up).
  void StageResponse(Connection* conn);
  void CloseConnection(Connection* conn);

  /// Creates (once) the per-endpoint scrape-duration histogram for `path`
  /// when a metrics registry is configured; called at registration time so
  /// the serving path never registers metrics.
  void EnsureScrapeHistogram(const std::string& path);
  /// Records one handler invocation against the endpoint's histogram.
  void RecordScrapeDuration(const std::string& path, int64_t micros);

  ObsServerOptions options_;
  std::map<std::string, Handler, std::less<>> handlers_;
  std::map<std::string, QueryHandler, std::less<>> query_handlers_;
  /// Per-endpoint scrape cost, fcp_obs_scrape_duration_us{endpoint=...}.
  std::map<std::string, telemetry::LatencyHistogram*, std::less<>>
      scrape_histograms_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd poked by Stop()
  std::atomic<uint16_t> port_{0};
  std::thread thread_;
  bool started_ = false;

  std::map<int, Connection*> connections_;  ///< poll-thread only

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  telemetry::Counter* requests_counter_ = nullptr;
  telemetry::Counter* rejected_counter_ = nullptr;
  telemetry::Counter* bad_requests_counter_ = nullptr;
};

}  // namespace obs
}  // namespace fcp

#endif  // FCP_OBS_OBS_SERVER_H_
