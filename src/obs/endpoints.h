// Standard observability endpoints (DESIGN.md §2.8): the glue between the
// ObsServer transport and the telemetry/watchdog data sources.
//
//   /metrics  Prometheus 0.0.4 text (MetricRegistry::ToPrometheus)
//   /varz     flat JSON snapshot of the same registry
//   /statusz  pipeline topology + watchdog stage table (JSON)
//   /healthz  liveness: 200 unless the watchdog says stalled (503)
//   /readyz   readiness: 503 until SetReady()+clean evaluation, 503 on stall
//   /tracez   flight-recorder state + last-N slow-op summaries (JSON)
//
// All handlers are snapshot-on-scrape: each call builds a fresh string from
// relaxed atomics / snapshot mutexes and touches nothing on the mining hot
// path.

#ifndef FCP_OBS_ENDPOINTS_H_
#define FCP_OBS_ENDPOINTS_H_

#include <functional>
#include <string>

namespace fcp {

namespace telemetry {
class MetricRegistry;
}  // namespace telemetry

namespace obs {

class ObsServer;
class Watchdog;

/// Data sources behind the standard endpoints. Pointers are borrowed and
/// must outlive the server (fcpmine stops the server before the engine and
/// watchdog are destroyed).
struct EndpointSources {
  /// Registry behind /metrics and /varz. Required.
  telemetry::MetricRegistry* registry = nullptr;
  /// Health state machine behind /healthz, /readyz and the watchdog half of
  /// /statusz. Nullable: without one, healthz/readyz always answer 200.
  Watchdog* watchdog = nullptr;
  /// Engine topology JSON for /statusz (ParallelEngine::StatusJson or
  /// MiningEngine::StatusJson). Nullable: "{}" is reported.
  std::function<std::string()> pipeline_status;
  /// Called before serializing /metrics and /varz so the owner can refresh
  /// sampled gauges (engine SnapshotMetrics side effects). Nullable.
  std::function<void()> refresh;
};

/// Installs the six standard handlers on `server`. Call before Start().
void InstallStandardEndpoints(ObsServer& server, EndpointSources sources);

/// The /tracez payload builder (exposed for tests): flight-recorder
/// compile/enable state, slow-op threshold and dump count, and the retained
/// slow-op summary ring, newest last.
std::string TracezJson();

}  // namespace obs
}  // namespace fcp

#endif  // FCP_OBS_ENDPOINTS_H_
