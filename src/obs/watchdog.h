// Pipeline watchdog: heartbeat collection, stall predicates, and the
// health state machine behind /healthz and /readyz (DESIGN.md §2.8).
//
// Every pipeline stage (segmenter workers, merge thread, shard miners, the
// serial ingest loop) registers a StageHeartbeat and then does exactly two
// things on its own thread: Beat() once per unit of real work, and
// MarkIdle() around blocking waits. Both are single relaxed-atomic stores —
// no clock reads, no locks — so instrumentation costs nothing on the mining
// hot path and cannot perturb the 0 allocs/op invariant.
//
// The watchdog thread owns all the clocks. Each evaluation it samples every
// stage's progress counter and input-queue depth probe, tracks when each
// last changed, and applies the stall predicates:
//
//   stalled:  a stage that is not idle has made no progress for
//             `stall_timeout_ms` (silent/wedged thread), OR a stage whose
//             input queue holds work has made no progress for the same
//             window (wedged consumer — catches a consumer that parks
//             itself "idle" while work rots in its queue).
//   degraded: a stage's input queue has been at capacity continuously for
//             `backlog_timeout_ms` while the stage still makes progress
//             (persistent backpressure), or the pipeline watermark lag
//             probe exceeds `watermark_lag_slo_ms`.
//
// The resulting state machine is
//
//   starting ──SetReady()+first clean evaluation──▶ healthy ⇄ degraded
//                                                      ▲⇅        ⇅
//                                                    stalled ◀───┘
//
// exported as the `fcp_health_state` gauge (0 starting, 1 healthy,
// 2 degraded, 3 stalled). /healthz returns 503 only when stalled;
// /readyz returns 503 while starting or stalled. Every transition is
// logged, counted (`fcp_health_transitions_total{to=...}`) and emitted as
// a trace instant so it lands on the watchdog's Perfetto track.

#ifndef FCP_OBS_WATCHDOG_H_
#define FCP_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace fcp {

namespace telemetry {
class MetricRegistry;
class Counter;
class Gauge;
}  // namespace telemetry

namespace obs {

/// The per-stage publication surface. Stages hold a raw pointer (owned by
/// the Watchdog, stable for its lifetime) and call these from their own
/// thread; both are relaxed atomics, safe to call at any frequency.
class StageHeartbeat {
 public:
  /// Records `n` units of completed work (events, segments, deliveries).
  void Beat(uint64_t n = 1) {
    progress_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Marks the stage as parked in a blocking wait (true) or actively
  /// working (false). An idle stage with an empty input queue is healthy no
  /// matter how long it stays silent.
  void MarkIdle(bool idle) { idle_.store(idle, std::memory_order_relaxed); }

  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }
  bool idle() const { return idle_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> progress_{0};
  std::atomic<bool> idle_{true};
};

enum class HealthState : int { kStarting = 0, kHealthy = 1, kDegraded = 2,
                               kStalled = 3 };

std::string_view HealthStateName(HealthState s);

struct WatchdogOptions {
  /// Evaluation cadence of the watchdog thread.
  int64_t poll_interval_ms = 100;
  /// No progress for this long (while busy, or with queued input) => the
  /// stage is stalled.
  int64_t stall_timeout_ms = 2000;
  /// Input queue continuously full for this long => degraded.
  int64_t backlog_timeout_ms = 500;
  /// Watermark lag above this => degraded. 0 disables the predicate.
  int64_t watermark_lag_slo_ms = 0;
  /// Where to export fcp_health_state / transition counters (nullable).
  telemetry::MetricRegistry* metrics = nullptr;
};

/// Per-stage status row, as reported in /statusz and /healthz.
struct StageStatus {
  std::string name;
  uint64_t progress = 0;
  bool idle = false;
  bool stalled = false;
  bool backlogged = false;
  size_t depth = 0;
  size_t capacity = 0;
  int64_t since_progress_ms = 0;  ///< ms since the progress counter moved
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a pipeline stage. `depth` (nullable) samples the stage's
  /// input-queue depth; `capacity` (0 = unbounded/unknown) arms the backlog
  /// predicate. Must be called before Start(); the returned heartbeat stays
  /// valid for the watchdog's lifetime.
  StageHeartbeat* RegisterStage(std::string name,
                                std::function<size_t()> depth = nullptr,
                                size_t capacity = 0);

  /// Installs the pipeline-wide watermark lag probe (max over shards of
  /// router watermark minus shard progress, in stream-time ms).
  void SetWatermarkLagProbe(std::function<int64_t()> probe);

  /// Starts the evaluation thread. No-op if poll_interval_ms <= 0 (tests
  /// drive EvaluateOnce directly).
  void Start();

  /// Stops and joins the evaluation thread. Must be called before the
  /// structures behind the depth/lag probes are destroyed. Idempotent.
  void Stop();

  /// Declares startup complete: the next evaluation may leave kStarting.
  /// Readiness (readyz) stays false until then, giving orchestrators a
  /// window where the process is alive but not yet serving.
  void SetReady();

  /// One evaluation pass at steady-clock time `now_ns`. Public so tests can
  /// drive the predicates deterministically with synthetic clocks; the
  /// background thread calls it with the real clock.
  void EvaluateOnce(int64_t now_ns);

  HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }

  /// True once SetReady() has been called and the most recent evaluation
  /// found no stalled stage.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Stage rows from the most recent evaluation (thread-safe snapshot).
  std::vector<StageStatus> Stages() const;

  /// {"state": "...", "ready": ..., "stages": [...]} — the watchdog half of
  /// /statusz and the body of /healthz.
  std::string StatusJson() const;

  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  struct Stage {
    std::string name;
    StageHeartbeat heartbeat;
    std::function<size_t()> depth_probe;
    size_t capacity = 0;
    telemetry::Counter* stall_counter = nullptr;  ///< fcp_stage_stalls_total{stage=...}
    // Evaluation-thread state (touched only under mu_ / by EvaluateOnce).
    uint64_t last_progress = 0;
    int64_t last_progress_ns = 0;
    int64_t last_below_capacity_ns = 0;
    bool stalled = false;
    StageStatus status;
  };

  void Loop();
  void TransitionTo(HealthState next, const std::string& why);

  WatchdogOptions options_;
  std::vector<std::unique_ptr<Stage>> stages_;  ///< stable addresses
  std::function<int64_t()> lag_probe_;

  std::atomic<int> state_{static_cast<int>(HealthState::kStarting)};
  std::atomic<bool> ready_{false};
  std::atomic<bool> ready_requested_{false};
  std::atomic<uint64_t> evaluations_{0};

  telemetry::Gauge* state_gauge_ = nullptr;
  telemetry::Gauge* watermark_lag_gauge_ = nullptr;
  telemetry::Counter* transitions_healthy_ = nullptr;
  telemetry::Counter* transitions_degraded_ = nullptr;
  telemetry::Counter* transitions_stalled_ = nullptr;

  mutable std::mutex mu_;  ///< guards per-stage eval state + status rows
  int64_t last_lag_ms_ = 0;
  bool first_eval_done_ = false;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace obs
}  // namespace fcp

#endif  // FCP_OBS_WATCHDOG_H_
