#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/http.h"
#include "prof/prof.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace fcp::obs {

/// Per-connection state, owned by the poll thread.
struct ObsServer::Connection {
  int fd = -1;
  std::string in;       ///< bytes received so far (request head)
  std::string out;      ///< rendered response
  size_t out_sent = 0;  ///< bytes of `out` already written
  bool responding = false;
};

ObsServer::ObsServer(ObsServerOptions options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    requests_counter_ =
        options_.metrics->GetCounter("fcp_obs_requests_total");
    rejected_counter_ =
        options_.metrics->GetCounter("fcp_obs_connections_rejected_total");
    bad_requests_counter_ =
        options_.metrics->GetCounter("fcp_obs_bad_requests_total");
  }
}

ObsServer::~ObsServer() { Stop(); }

void ObsServer::SetHandler(std::string path, Handler handler) {
  EnsureScrapeHistogram(path);
  handlers_[std::move(path)] = std::move(handler);
}

void ObsServer::SetQueryHandler(std::string path, QueryHandler handler) {
  EnsureScrapeHistogram(path);
  query_handlers_[std::move(path)] = std::move(handler);
}

void ObsServer::EnsureScrapeHistogram(const std::string& path) {
  if (options_.metrics == nullptr) return;
  if (scrape_histograms_.count(path) != 0) return;
  scrape_histograms_[path] = options_.metrics->GetHistogram(
      "fcp_obs_scrape_duration_us{" +
      telemetry::FormatLabel("endpoint", path) + "}");
}

void ObsServer::RecordScrapeDuration(const std::string& path,
                                     int64_t micros) {
  auto it = scrape_histograms_.find(path);
  if (it != scrape_histograms_.end()) {
    it->second->Record(micros < 0 ? 0 : static_cast<uint64_t>(micros));
  }
}

Status ObsServer::Start() {
  if (started_) return Status::FailedPrecondition("ObsServer already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("unparseable listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal("bind " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
    Stop();
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    Stop();
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_ = true;
  thread_ = std::thread(&ObsServer::Loop, this);
  return Status::OK();
}

void ObsServer::Stop() {
  if (started_) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    thread_.join();
    started_ = false;
  }
  for (auto& [fd, conn] : connections_) {
    ::close(fd);
    delete conn;
  }
  connections_.clear();
  if (wake_fd_ >= 0) { ::close(wake_fd_); wake_fd_ = -1; }
  if (epoll_fd_ >= 0) { ::close(epoll_fd_); epoll_fd_ = -1; }
  if (listen_fd_ >= 0) { ::close(listen_fd_); listen_fd_ = -1; }
}

void ObsServer::Loop() {
  trace::SetThreadName("obs-server");
  prof::ThreadScope prof_scope("obs-server");
  constexpr int kMaxEvents = 32;
  epoll_event events[kMaxEvents];
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) return;  // Stop() requested
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      // HandleReadable may have closed or switched the connection to
      // writing; re-check it is still tracked before handling EPOLLOUT.
      it = connections_.find(fd);
      if (it != connections_.end() && (events[i].events & EPOLLOUT) &&
          it->second->responding) {
        HandleWritable(it->second);
      }
    }
  }
}

void ObsServer::AcceptAll() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next wakeup
    auto* conn = new Connection();
    conn->fd = fd;
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Over the cap: answer 503 immediately (best-effort, the socket
      // buffer always has room for a short response) and close.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      std::string resp = RenderHttpResponse(
          503, "text/plain; charset=utf-8", "connection limit reached\n");
      [[maybe_unused]] ssize_t n = ::write(fd, resp.data(), resp.size());
      ::close(fd);
      delete conn;
      continue;
    }
    connections_[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void ObsServer::HandleReadable(Connection* conn) {
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_request_bytes) {
        if (bad_requests_counter_ != nullptr) bad_requests_counter_->Increment();
        conn->out = RenderHttpResponse(431, "text/plain; charset=utf-8",
                                       "request too large\n");
        conn->responding = true;
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed before a full request arrived
      if (!conn->responding) {
        CloseConnection(conn);
        return;
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }

  if (!conn->responding) {
    StageResponse(conn);
    if (!conn->responding) return;  // request still incomplete
  }

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  HandleWritable(conn);
}

void ObsServer::StageResponse(Connection* conn) {
  HttpRequest req;
  switch (ParseHttpRequest(conn->in, &req)) {
    case ParseResult::kIncomplete:
      return;
    case ParseResult::kBad: {
      if (bad_requests_counter_ != nullptr) bad_requests_counter_->Increment();
      conn->out = RenderHttpResponse(400, "text/plain; charset=utf-8",
                                     "malformed request\n");
      conn->responding = true;
      return;
    }
    case ParseResult::kOk:
      break;
  }

  const bool head_only = req.method == "HEAD";
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (requests_counter_ != nullptr) requests_counter_->Increment();

  if (req.method != "GET" && req.method != "HEAD") {
    conn->out = RenderHttpResponse(405, "text/plain; charset=utf-8",
                                   "read-only server: GET/HEAD only\n");
    conn->responding = true;
    return;
  }
  auto qit = query_handlers_.find(req.target);
  auto it = handlers_.find(req.target);
  if (qit == query_handlers_.end() && it == handlers_.end()) {
    conn->out = RenderHttpResponse(404, "text/plain; charset=utf-8",
                                   "unknown endpoint\n", head_only);
    conn->responding = true;
    return;
  }
  FCP_TRACE_SPAN("obs/scrape");
  const auto scrape_start = std::chrono::steady_clock::now();
  HttpResponse resp =
      qit != query_handlers_.end() ? qit->second(req.query) : it->second();
  RecordScrapeDuration(
      req.target, std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - scrape_start)
                      .count());
  conn->out = RenderHttpResponse(resp.status, resp.content_type, resp.body,
                                 head_only);
  conn->responding = true;
}

void ObsServer::HandleWritable(Connection* conn) {
  while (conn->out_sent < conn->out.size()) {
    ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_sent,
                        conn->out.size() - conn->out_sent);
    if (n > 0) {
      conn->out_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    break;  // peer went away; close below
  }
  CloseConnection(conn);
}

void ObsServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  connections_.erase(conn->fd);
  ::close(conn->fd);
  delete conn;
}

}  // namespace fcp::obs
