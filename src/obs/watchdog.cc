#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace fcp::obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kStarting: return "starting";
    case HealthState::kHealthy:  return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kStalled:  return "stalled";
  }
  return "unknown";
}

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {
  if (options_.metrics != nullptr) {
    state_gauge_ = options_.metrics->GetGauge("fcp_health_state");
    state_gauge_->Set(static_cast<int64_t>(HealthState::kStarting));
    watermark_lag_gauge_ =
        options_.metrics->GetGauge("fcp_watchdog_watermark_lag_ms");
    transitions_healthy_ = options_.metrics->GetCounter(
        "fcp_health_transitions_total{to=\"healthy\"}");
    transitions_degraded_ = options_.metrics->GetCounter(
        "fcp_health_transitions_total{to=\"degraded\"}");
    transitions_stalled_ = options_.metrics->GetCounter(
        "fcp_health_transitions_total{to=\"stalled\"}");
  }
}

Watchdog::~Watchdog() { Stop(); }

StageHeartbeat* Watchdog::RegisterStage(std::string name,
                                        std::function<size_t()> depth,
                                        size_t capacity) {
  auto stage = std::make_unique<Stage>();
  stage->name = std::move(name);
  stage->depth_probe = std::move(depth);
  stage->capacity = capacity;
  if (options_.metrics != nullptr) {
    stage->stall_counter = options_.metrics->GetCounter(
        "fcp_stage_stalls_total{" +
        telemetry::FormatLabel("stage", stage->name) + "}");
  }
  int64_t now = SteadyNowNs();
  stage->last_progress_ns = now;
  stage->last_below_capacity_ns = now;
  stage->status.name = stage->name;
  std::lock_guard<std::mutex> lock(mu_);
  stages_.push_back(std::move(stage));
  return &stages_.back()->heartbeat;
}

void Watchdog::SetWatermarkLagProbe(std::function<int64_t()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  lag_probe_ = std::move(probe);
}

void Watchdog::SetReady() {
  ready_requested_.store(true, std::memory_order_release);
}

void Watchdog::EvaluateOnce(int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t stall_ns = options_.stall_timeout_ms * 1'000'000;
  const int64_t backlog_ns = options_.backlog_timeout_ms * 1'000'000;

  bool any_stalled = false;
  bool any_backlogged = false;
  std::string culprit;

  for (auto& sp : stages_) {
    Stage& s = *sp;
    const uint64_t progress = s.heartbeat.progress();
    const bool idle = s.heartbeat.idle();
    size_t depth = 0;
    if (s.depth_probe) depth = s.depth_probe();

    // The first evaluation re-anchors every clock to `now_ns` so tests can
    // drive the predicates with a synthetic time base.
    if (progress != s.last_progress || !first_eval_done_) {
      s.last_progress = progress;
      s.last_progress_ns = now_ns;
    }
    if (s.capacity == 0 || depth < s.capacity || !first_eval_done_) {
      s.last_below_capacity_ns = now_ns;
    }

    const int64_t silent_ns = now_ns - s.last_progress_ns;
    // Wedged consumer: queued input but no progress. Silent thread: claims
    // to be busy but the progress counter has not moved.
    const bool stalled =
        silent_ns >= stall_ns && stall_ns > 0 && (depth > 0 || !idle);
    const bool backlogged = s.capacity > 0 && depth >= s.capacity &&
                            (now_ns - s.last_below_capacity_ns) >= backlog_ns;

    if (stalled && !s.stalled && s.stall_counter != nullptr) {
      s.stall_counter->Increment();
    }
    s.stalled = stalled;

    s.status.progress = progress;
    s.status.idle = idle;
    s.status.stalled = stalled;
    s.status.backlogged = backlogged;
    s.status.depth = depth;
    s.status.capacity = s.capacity;
    s.status.since_progress_ms = silent_ns / 1'000'000;

    if (stalled && culprit.empty()) culprit = s.name;
    any_stalled |= stalled;
    any_backlogged |= backlogged;
  }

  int64_t lag_ms = 0;
  if (lag_probe_) {
    lag_ms = lag_probe_();
    if (watermark_lag_gauge_ != nullptr) watermark_lag_gauge_->Set(lag_ms);
  }
  last_lag_ms_ = lag_ms;
  const bool lag_breach =
      options_.watermark_lag_slo_ms > 0 && lag_ms > options_.watermark_lag_slo_ms;

  first_eval_done_ = true;
  evaluations_.fetch_add(1, std::memory_order_relaxed);

  HealthState next;
  if (any_stalled) {
    next = HealthState::kStalled;
  } else if (any_backlogged || lag_breach) {
    next = HealthState::kDegraded;
  } else {
    next = HealthState::kHealthy;
  }
  if (!ready_requested_.load(std::memory_order_acquire) &&
      state() == HealthState::kStarting && next != HealthState::kStalled) {
    // Hold in kStarting until the process declares itself ready; a stall
    // during startup still surfaces.
    ready_.store(false, std::memory_order_release);
    return;
  }

  ready_.store(ready_requested_.load(std::memory_order_acquire) &&
                   next != HealthState::kStalled,
               std::memory_order_release);

  if (next != state()) {
    std::string why;
    if (next == HealthState::kStalled) {
      why = "stage '" + culprit + "' stalled";
    } else if (next == HealthState::kDegraded) {
      why = lag_breach ? "watermark lag " + std::to_string(lag_ms) + "ms over SLO"
                       : "queue backlog";
    } else {
      why = "all stages progressing";
    }
    TransitionTo(next, why);
  }
}

void Watchdog::TransitionTo(HealthState next, const std::string& why) {
  HealthState prev = state();
  state_.store(static_cast<int>(next), std::memory_order_release);
  if (state_gauge_ != nullptr) state_gauge_->Set(static_cast<int64_t>(next));
  telemetry::Counter* c = nullptr;
  switch (next) {
    case HealthState::kHealthy:  c = transitions_healthy_; break;
    case HealthState::kDegraded: c = transitions_degraded_; break;
    case HealthState::kStalled:  c = transitions_stalled_; break;
    case HealthState::kStarting: break;
  }
  if (c != nullptr) c->Increment();
  FCP_TRACE_INSTANT("watchdog/transition", 0,
                    static_cast<uint64_t>(static_cast<int>(next)));
  std::fprintf(stderr, "[watchdog] health %.*s -> %.*s (%s)\n",
               static_cast<int>(HealthStateName(prev).size()),
               HealthStateName(prev).data(),
               static_cast<int>(HealthStateName(next).size()),
               HealthStateName(next).data(), why.c_str());
}

void Watchdog::Start() {
  if (started_ || options_.poll_interval_ms <= 0) return;
  started_ = true;
  stop_requested_ = false;
  thread_ = std::thread(&Watchdog::Loop, this);
}

void Watchdog::Loop() {
  trace::SetThreadName("watchdog");
  FCP_TRACE_SPAN("watchdog/loop");
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_requested_) {
    run_cv_.wait_for(lock,
                     std::chrono::milliseconds(options_.poll_interval_ms));
    if (stop_requested_) break;
    lock.unlock();
    {
      FCP_TRACE_SPAN("watchdog/evaluate");
      EvaluateOnce(SteadyNowNs());
    }
    lock.lock();
  }
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

std::vector<StageStatus> Watchdog::Stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageStatus> out;
  out.reserve(stages_.size());
  for (const auto& s : stages_) out.push_back(s->status);
  return out;
}

std::string Watchdog::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"state\":\"";
  out += HealthStateName(state());
  out += "\",\"ready\":";
  out += ready() ? "true" : "false";
  out += ",\"evaluations\":";
  out += std::to_string(evaluations_.load(std::memory_order_relaxed));
  out += ",\"watermark_lag_ms\":";
  out += std::to_string(last_lag_ms_);
  out += ",\"stages\":[";
  bool first = true;
  for (const auto& sp : stages_) {
    const StageStatus& s = sp->status;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + s.name + "\"";
    out += ",\"progress\":" + std::to_string(s.progress);
    out += ",\"idle\":" + std::string(s.idle ? "true" : "false");
    out += ",\"stalled\":" + std::string(s.stalled ? "true" : "false");
    out += ",\"backlogged\":" + std::string(s.backlogged ? "true" : "false");
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"capacity\":" + std::to_string(s.capacity);
    out += ",\"since_progress_ms\":" + std::to_string(s.since_progress_ms);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace fcp::obs
