// Minimal HTTP/1.1 request parsing and response rendering for the
// observability plane (DESIGN.md §2.8).
//
// The ObsServer speaks just enough HTTP for scrapers (Prometheus, curl,
// kubelet probes): GET/HEAD requests, no bodies, no keep-alive. Parsing and
// rendering are pure functions over byte buffers so they can be unit-tested
// without sockets, and so the epoll loop in obs_server.cc stays a thin
// transport. The same substrate is the shape the future ingest daemon's
// admin port will reuse (ROADMAP.md).

#ifndef FCP_OBS_HTTP_H_
#define FCP_OBS_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace fcp::obs {

/// A parsed request line. Headers are scanned but not retained — the
/// observability endpoints are read-only snapshots, so nothing beyond the
/// method and target influences the response.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string target;  ///< request path, query string stripped
  std::string query;   ///< raw query string without the '?', "" when absent
};

enum class ParseResult {
  kIncomplete,  ///< header terminator not yet received; keep reading
  kOk,          ///< request parsed; `out` is filled in
  kBad,         ///< malformed request line / not HTTP — reject with 400
};

/// Parses the request head out of `buffer` (everything received so far).
/// Returns kIncomplete until the blank line ending the header block has
/// arrived; the caller enforces its own size cap on the buffer. Any query
/// string ("?...") is split off the target into `query`.
ParseResult ParseHttpRequest(std::string_view buffer, HttpRequest* out);

/// Renders a full HTTP/1.1 response with Content-Length and
/// "Connection: close". `head_only` (HEAD requests) renders the same
/// headers — including the Content-Length of the suppressed body — with an
/// empty payload, as RFC 9110 requires.
std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool head_only = false);

/// The canonical reason phrase for the handful of status codes the
/// observability plane emits ("OK", "Not Found", ...).
std::string_view StatusReason(int status);

}  // namespace fcp::obs

#endif  // FCP_OBS_HTTP_H_
