#include "obs/http.h"

#include <cctype>

namespace fcp::obs {
namespace {

/// A token is valid if every byte is a printable ASCII character; this is
/// looser than RFC 9110 tchar but tight enough to reject binary garbage and
/// embedded control bytes from non-HTTP clients poking the port.
bool PrintableAscii(std::string_view s) {
  for (unsigned char c : s) {
    if (c < 0x21 || c > 0x7e) return false;
  }
  return !s.empty();
}

}  // namespace

ParseResult ParseHttpRequest(std::string_view buffer, HttpRequest* out) {
  // The head ends at the first blank line. Accept bare-LF line endings too —
  // hand-typed `nc` probes use them and rejecting costs nothing. A malformed
  // request line is rejected as soon as it is complete, without waiting for
  // the rest of the head.
  size_t line_end = buffer.find('\n');
  if (line_end == std::string_view::npos) return ParseResult::kIncomplete;

  std::string_view line = buffer.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  // request-line = method SP request-target SP HTTP-version
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return ParseResult::kBad;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return ParseResult::kBad;
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);

  if (!PrintableAscii(method) || !PrintableAscii(target)) {
    return ParseResult::kBad;
  }
  if (version.substr(0, 5) != "HTTP/") return ParseResult::kBad;
  if (target.front() != '/') return ParseResult::kBad;

  // Wait for the full header block so the reply is not interleaved with
  // bytes the client is still sending.
  if (buffer.find("\r\n\r\n") == std::string_view::npos &&
      buffer.find("\n\n") == std::string_view::npos) {
    return ParseResult::kIncomplete;
  }

  std::string_view query;
  size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    query = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }

  out->method.assign(method);
  out->target.assign(target);
  out->query.assign(query);
  return ParseResult::kOk;
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool head_only) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += StatusReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

}  // namespace fcp::obs
