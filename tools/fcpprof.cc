// fcpprof — inspector for folded-stack profiles (fcpmine --profile output,
// /pprof/profile captures).
//
// A folded profile is one line per distinct stack: semicolon-separated
// frames, root first, then a space and the sample count. `wait;<tag>` lines
// are the off-CPU pseudo stacks fcp::prof emits alongside CPU samples.
//
// Modes (exit code 0 on success; budget assertions exit 1 on violation,
// 2 on usage/parse errors):
//   fcpprof top <profile> [--n=20] [--self]
//       Top frames by inclusive (default) or self samples.
//   fcpprof diff <before> <after> [--n=20]
//       Per-frame inclusive delta (after - before), largest regressions
//       first. Runs clean on disjoint profiles: missing frames count 0.
//   fcpprof assert <profile> --frame=<substr> [--max_pct=P] [--min_pct=P]
//       Asserts the frame's inclusive share of total samples is within the
//       budget. Repeatable gate for CI (exit 1 = budget violated).
//   fcpprof check <profile> [--min_symbolized_pct=95]
//               [--require_majority=<substr>] [--wait_substr=<substr>]
//               [--cpu_only]
//       Structural validation: parses every line, reports symbolization
//       rate (frames not rendered as raw 0x... addresses), and with
//       --require_majority verifies the matching frames carry a strict
//       majority of on-CPU samples AND outweigh the off-CPU wait time of
//       the wait tags matching --wait_substr (default: every wait tag).
//       CI scopes the wait comparison to the mining threads' own block
//       point (--wait_substr=shard/): upstream backpressure tags grow
//       precisely because mining is the bottleneck, so comparing against
//       them would penalize the healthy case on small machines.
//       --cpu_only skips the wait comparison entirely — the right gate for
//       a paced live scrape, where threads idle between arrivals by design
//       and idle wait dwarfs on-CPU time on any machine.
//
// The summary block each mode prints (total samples, CPU vs wait split)
// keeps eyeballing a capture honest before any flamegraph tooling runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Profile {
  /// stack line (without count) -> samples
  std::map<std::string, uint64_t> stacks;
  uint64_t total = 0;       ///< all samples
  uint64_t cpu_total = 0;   ///< samples excluding wait; pseudo stacks
  uint64_t wait_total = 0;  ///< wait; pseudo-stack units
  uint64_t frames_seen = 0;
  uint64_t frames_symbolized = 0;  ///< frames not of the form 0x...
};

int Usage() {
  std::fprintf(stderr,
               "usage: fcpprof top <profile> [--n=20] [--self]\n"
               "       fcpprof diff <before> <after> [--n=20]\n"
               "       fcpprof assert <profile> --frame=<substr> "
               "[--max_pct=P] [--min_pct=P]\n"
               "       fcpprof check <profile> [--min_symbolized_pct=95] "
               "[--require_majority=<substr>]\n");
  return 2;
}

bool IsHexFrame(const std::string& frame) {
  return frame.size() > 2 && frame[0] == '0' && frame[1] == 'x';
}

bool IsWaitStack(const std::string& stack) {
  return stack.rfind("wait;", 0) == 0;
}

/// Parses one folded profile. Returns false (with a message) on any
/// malformed line — captures are machine-written, so damage means the
/// capture path is broken and a gate should fail loudly.
bool LoadProfile(const std::string& path, Profile* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      *error = path + ":" + std::to_string(lineno) + ": no count field";
      return false;
    }
    const std::string count_str = line.substr(space + 1);
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(count_str.c_str(), &end, 10);
    if (end == count_str.c_str() || *end != '\0') {
      *error = path + ":" + std::to_string(lineno) + ": bad count '" +
               count_str + "'";
      return false;
    }
    std::string stack = line.substr(0, space);
    out->stacks[stack] += count;
    out->total += count;
    if (IsWaitStack(stack)) {
      out->wait_total += count;
      continue;
    }
    out->cpu_total += count;
    // Per-frame symbolization accounting (weighted by samples).
    std::stringstream frames(stack);
    std::string frame;
    while (std::getline(frames, frame, ';')) {
      out->frames_seen += count;
      if (!IsHexFrame(frame)) out->frames_symbolized += count;
    }
  }
  return true;
}

/// Inclusive samples per frame: a stack's count goes to every distinct
/// frame on it (counted once per stack, so recursion does not double-bill).
std::map<std::string, uint64_t> InclusiveByFrame(const Profile& profile) {
  std::map<std::string, uint64_t> inclusive;
  for (const auto& [stack, count] : profile.stacks) {
    std::set<std::string> seen;
    std::stringstream frames(stack);
    std::string frame;
    while (std::getline(frames, frame, ';')) {
      if (seen.insert(frame).second) inclusive[frame] += count;
    }
  }
  return inclusive;
}

/// Self samples per frame: a stack's count goes to its leaf only.
std::map<std::string, uint64_t> SelfByFrame(const Profile& profile) {
  std::map<std::string, uint64_t> self;
  for (const auto& [stack, count] : profile.stacks) {
    const size_t semi = stack.rfind(';');
    self[semi == std::string::npos ? stack : stack.substr(semi + 1)] +=
        count;
  }
  return self;
}

/// Inclusive samples carried by frames containing `substr` (each stack
/// counted at most once), split by CPU/wait.
uint64_t MatchingCpuSamples(const Profile& profile,
                            const std::string& substr) {
  uint64_t matched = 0;
  for (const auto& [stack, count] : profile.stacks) {
    if (IsWaitStack(stack)) continue;
    if (stack.find(substr) != std::string::npos) matched += count;
  }
  return matched;
}

void PrintSummary(const char* label, const Profile& profile) {
  std::printf(
      "%s: %llu samples (%llu cpu, %llu wait), %zu stacks, "
      "%.1f%% of frames symbolized\n",
      label, static_cast<unsigned long long>(profile.total),
      static_cast<unsigned long long>(profile.cpu_total),
      static_cast<unsigned long long>(profile.wait_total),
      profile.stacks.size(),
      profile.frames_seen == 0
          ? 100.0
          : 100.0 * static_cast<double>(profile.frames_symbolized) /
                static_cast<double>(profile.frames_seen));
}

long FlagInt(const std::vector<std::string>& args, const std::string& name,
             long fallback) {
  const std::string prefix = "--" + name + "=";
  for (const std::string& arg : args) {
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string FlagStr(const std::vector<std::string>& args,
                    const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (const std::string& arg : args) {
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

bool FlagBool(const std::vector<std::string>& args, const std::string& name) {
  return std::find(args.begin(), args.end(), "--" + name) != args.end();
}

int RunTop(const Profile& profile, const std::vector<std::string>& args) {
  const long n = FlagInt(args, "n", 20);
  const bool self = FlagBool(args, "self");
  const auto by_frame =
      self ? SelfByFrame(profile) : InclusiveByFrame(profile);
  std::vector<std::pair<std::string, uint64_t>> rows(by_frame.begin(),
                                                     by_frame.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  PrintSummary("profile", profile);
  std::printf("top %ld frames by %s samples:\n", n,
              self ? "self" : "inclusive");
  long printed = 0;
  for (const auto& [frame, count] : rows) {
    if (printed++ >= n) break;
    std::printf("  %8llu  %5.1f%%  %s\n",
                static_cast<unsigned long long>(count),
                profile.total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(count) /
                                         static_cast<double>(profile.total),
                frame.c_str());
  }
  return 0;
}

int RunDiff(const Profile& before, const Profile& after,
            const std::vector<std::string>& args) {
  const long n = FlagInt(args, "n", 20);
  const auto inc_before = InclusiveByFrame(before);
  const auto inc_after = InclusiveByFrame(after);
  // Normalize to percent-of-total so two captures of different lengths
  // compare; the absolute columns stay for context.
  auto pct = [](const std::map<std::string, uint64_t>& m,
                const std::string& frame, uint64_t total) {
    const auto it = m.find(frame);
    if (it == m.end() || total == 0) return 0.0;
    return 100.0 * static_cast<double>(it->second) /
           static_cast<double>(total);
  };
  std::set<std::string> frames;
  for (const auto& [frame, count] : inc_before) frames.insert(frame);
  for (const auto& [frame, count] : inc_after) frames.insert(frame);
  struct Row {
    std::string frame;
    double before_pct, after_pct, delta;
  };
  std::vector<Row> rows;
  for (const std::string& frame : frames) {
    Row row;
    row.frame = frame;
    row.before_pct = pct(inc_before, frame, before.total);
    row.after_pct = pct(inc_after, frame, after.total);
    row.delta = row.after_pct - row.before_pct;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.delta != b.delta ? a.delta > b.delta : a.frame < b.frame;
  });
  PrintSummary("before", before);
  PrintSummary("after", after);
  std::printf("largest inclusive-share regressions (after - before):\n");
  long printed = 0;
  for (const Row& row : rows) {
    if (printed++ >= n) break;
    std::printf("  %+6.2f%%  (%5.1f%% -> %5.1f%%)  %s\n", row.delta,
                row.before_pct, row.after_pct, row.frame.c_str());
  }
  return 0;
}

int RunAssert(const Profile& profile, const std::vector<std::string>& args) {
  const std::string frame = FlagStr(args, "frame");
  if (frame.empty()) return Usage();
  const long max_pct = FlagInt(args, "max_pct", 100);
  const long min_pct = FlagInt(args, "min_pct", 0);
  uint64_t matched = 0;
  for (const auto& [stack, count] : profile.stacks) {
    if (stack.find(frame) != std::string::npos) matched += count;
  }
  const double share =
      profile.total == 0 ? 0.0
                         : 100.0 * static_cast<double>(matched) /
                               static_cast<double>(profile.total);
  std::printf("frames matching '%s': %llu samples = %.1f%% of total "
              "(budget %ld..%ld%%)\n",
              frame.c_str(), static_cast<unsigned long long>(matched),
              share, min_pct, max_pct);
  if (share > static_cast<double>(max_pct) ||
      share < static_cast<double>(min_pct)) {
    std::fprintf(stderr, "fcpprof: budget violated\n");
    return 1;
  }
  return 0;
}

int RunCheck(const Profile& profile, const std::vector<std::string>& args) {
  PrintSummary("profile", profile);
  if (profile.total == 0) {
    std::fprintf(stderr, "fcpprof: profile is empty\n");
    return 1;
  }
  const long min_symbolized = FlagInt(args, "min_symbolized_pct", 95);
  const double symbolized_pct =
      profile.frames_seen == 0
          ? 100.0
          : 100.0 * static_cast<double>(profile.frames_symbolized) /
                static_cast<double>(profile.frames_seen);
  if (symbolized_pct < static_cast<double>(min_symbolized)) {
    std::fprintf(stderr,
                 "fcpprof: symbolization %.1f%% below required %ld%%\n",
                 symbolized_pct, min_symbolized);
    return 1;
  }
  const std::string majority = FlagStr(args, "require_majority");
  if (!majority.empty()) {
    const uint64_t matched = MatchingCpuSamples(profile, majority);
    const bool cpu_only = FlagBool(args, "cpu_only");
    const std::string wait_substr = FlagStr(args, "wait_substr");
    uint64_t wait_matched = 0;
    for (const auto& [stack, count] : profile.stacks) {
      if (!IsWaitStack(stack)) continue;
      if (wait_substr.empty() ||
          stack.find(wait_substr) != std::string::npos) {
        wait_matched += count;
      }
    }
    std::printf("cpu samples matching '%s': %llu of %llu cpu; wait%s%s: "
                "%llu%s\n",
                majority.c_str(), static_cast<unsigned long long>(matched),
                static_cast<unsigned long long>(profile.cpu_total),
                wait_substr.empty() ? "" : " matching ",
                wait_substr.c_str(),
                static_cast<unsigned long long>(wait_matched),
                cpu_only ? " (not compared: --cpu_only)" : "");
    if (matched * 2 <= profile.cpu_total) {
      std::fprintf(stderr,
                   "fcpprof: '%s' frames are not a majority of on-CPU "
                   "samples\n",
                   majority.c_str());
      return 1;
    }
    if (!cpu_only && matched <= wait_matched) {
      std::fprintf(stderr,
                   "fcpprof: '%s' on-CPU samples do not outweigh the "
                   "matched off-CPU wait time\n",
                   majority.c_str());
      return 1;
    }
  }
  std::printf("ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string mode = args[0];
  // Positional (non --flag) arguments after the mode are profile paths.
  std::vector<std::string> paths;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) paths.push_back(args[i]);
  }

  const size_t want_paths = mode == "diff" ? 2 : 1;
  if (paths.size() != want_paths) return Usage();

  std::vector<Profile> profiles(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    std::string error;
    if (!LoadProfile(paths[i], &profiles[i], &error)) {
      std::fprintf(stderr, "fcpprof: %s\n", error.c_str());
      return 2;
    }
  }

  if (mode == "top") return RunTop(profiles[0], args);
  if (mode == "diff") return RunDiff(profiles[0], profiles[1], args);
  if (mode == "assert") return RunAssert(profiles[0], args);
  if (mode == "check") return RunCheck(profiles[0], args);
  return Usage();
}
