// fcptrace — validate and inspect fcp flight-recorder traces.
//
// Parses the Chrome trace-event JSON that `fcpmine --trace` (or
// trace::WriteChromeTrace) produced, checks it against the schema Perfetto
// expects, and summarizes it: per-name span statistics, the slowest
// individual spans, and flow connectivity (does any segment's journey
// actually cross a thread boundary?).
//
// Examples:
//   fcptrace --input=run.trace.json
//   fcptrace --input=run.trace.json --slowest=25
//   fcptrace --input=run.trace.json --require_cross_thread_flows
//
// Flags:
//   --input=<path>        Chrome trace JSON to inspect (required)
//   --slowest=N           print the N slowest spans (default 10; 0 = skip)
//   --validate            parse + schema-check only, print "valid", exit
//   --require_cross_thread_flows   exit nonzero unless at least one flow id
//                         appears on >= 2 distinct threads (CI uses this to
//                         prove cross-shard stitching survived a change)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "fcptrace: %s\n", message.c_str());
  return 1;
}

struct SpanStats {
  uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};

struct SlowSpan {
  std::string name;
  uint64_t tid = 0;
  double ts_us = 0;
  double dur_us = 0;
};

}  // namespace

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const std::string input = flags.GetString("input", "");
  if (input.empty()) return Fail("need --input=<trace.json>");

  std::ifstream in(input, std::ios::binary);
  if (!in) return Fail("cannot open " + input);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  std::string error;
  const auto events = fcp::trace::ParseChromeTraceJson(json, &error);
  if (!events.has_value()) return Fail("invalid trace: " + error);
  if (flags.GetBool("validate", false)) {
    std::printf("valid: %zu events\n", events->size());
    return 0;
  }

  // --- Reconstruct spans (per-thread B/E matching) and flows. ---------------
  std::map<uint64_t, std::string> thread_names;
  std::map<uint64_t, std::vector<SlowSpan>> open;  // per-tid B stack
  std::map<std::string, SpanStats> by_name;
  std::vector<SlowSpan> spans;
  std::map<std::string, std::set<uint64_t>> flow_tids;  // flow id -> tids
  uint64_t unmatched_ends = 0;
  for (const fcp::trace::ParsedTraceEvent& event : *events) {
    switch (event.ph) {
      case 'M':
        if (event.name == "thread_name") {
          thread_names[event.tid] = event.arg_name;
        }
        break;
      case 'B':
        open[event.tid].push_back(
            SlowSpan{event.name, event.tid, event.ts_us, 0});
        break;
      case 'E': {
        std::vector<SlowSpan>& stack = open[event.tid];
        if (stack.empty()) {
          ++unmatched_ends;
          break;
        }
        SlowSpan span = stack.back();
        stack.pop_back();
        span.dur_us = event.ts_us - span.ts_us;
        SpanStats& stats = by_name[span.name];
        ++stats.count;
        stats.total_us += span.dur_us;
        stats.max_us = std::max(stats.max_us, span.dur_us);
        spans.push_back(std::move(span));
        break;
      }
      case 's':
      case 't':
      case 'f':
        flow_tids[event.id].insert(event.tid);
        break;
      default:
        break;
    }
  }
  uint64_t unclosed = 0;
  for (const auto& [tid, stack] : open) unclosed += stack.size();

  // --- Report. ---------------------------------------------------------------
  std::printf("%zu events, %zu threads, %zu spans", events->size(),
              thread_names.size(), spans.size());
  if (unclosed > 0 || unmatched_ends > 0) {
    std::printf(" (%llu unclosed, %llu unmatched ends)",
                static_cast<unsigned long long>(unclosed),
                static_cast<unsigned long long>(unmatched_ends));
  }
  std::printf("\n");
  for (const auto& [tid, name] : thread_names) {
    std::printf("  tid %llu: %s\n", static_cast<unsigned long long>(tid),
                name.c_str());
  }

  if (!by_name.empty()) {
    fcp::TablePrinter table({"span", "count", "total_ms", "mean_us", "max_us"});
    for (const auto& [name, stats] : by_name) {
      table.AddRow({name, std::to_string(stats.count),
                    fcp::TablePrinter::Num(stats.total_us / 1000.0, 3),
                    fcp::TablePrinter::Num(
                        stats.total_us / static_cast<double>(stats.count), 2),
                    fcp::TablePrinter::Num(stats.max_us, 2)});
    }
    table.Print(std::cout);
  }

  const size_t slowest = static_cast<size_t>(flags.GetInt("slowest", 10));
  if (slowest > 0 && !spans.empty()) {
    std::sort(spans.begin(), spans.end(),
              [](const SlowSpan& a, const SlowSpan& b) {
                return a.dur_us > b.dur_us;
              });
    std::printf("slowest spans:\n");
    for (size_t i = 0; i < std::min(slowest, spans.size()); ++i) {
      const SlowSpan& span = spans[i];
      const auto name_it = thread_names.find(span.tid);
      std::printf("  %10.2f us  %-24s  tid %llu%s%s  @ %.3f us\n",
                  span.dur_us, span.name.c_str(),
                  static_cast<unsigned long long>(span.tid),
                  name_it != thread_names.end() ? " " : "",
                  name_it != thread_names.end() ? name_it->second.c_str() : "",
                  span.ts_us);
    }
  }

  size_t cross_thread = 0;
  for (const auto& [id, tids] : flow_tids) {
    if (tids.size() >= 2) ++cross_thread;
  }
  std::printf("flows: %zu total, %zu cross-thread\n", flow_tids.size(),
              cross_thread);
  if (flags.GetBool("require_cross_thread_flows", false) &&
      cross_thread == 0) {
    return Fail("no flow id appears on >= 2 threads (causal stitching broken)");
  }
  return 0;
}
