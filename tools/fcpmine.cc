// fcpmine — command-line FCP mining over a trace file.
//
// Reads a `.csv` (stream,object,time_ms) or `.fcpt` binary trace, runs the
// chosen miner, and prints the discovered patterns: either every alert as it
// fires, or an end-of-run report (top-K / maximal patterns).
//
// Examples:
//   fcpmine --input=trace.csv --theta=3 --xi=60 --tau=1800
//   fcpmine --input=trace.fcpt --algo=dimine --report=topk --k=20
//   fcpmine --synthetic=traffic --events=100000 --report=maximal
//
// Flags:
//   --input=<path>        trace file (.csv or .fcpt)
//   --synthetic=traffic|twitter   generate a demo workload instead
//   --events=N            synthetic workload size (default 50000)
//   --algo=coomine|dimine|matrixmine   (default coomine)
//   --xi=<seconds>        within-stream window  (default 60)
//   --tau=<seconds>       cross-stream window   (default 1800)
//   --theta=N             min distinct streams  (default 3)
//   --min_size/--max_size pattern size range    (default 2..5)
//   --report=stream|topk|maximal   output mode  (default stream)
//   --k=N                 top-K size            (default 20)
//   --suppress=<seconds>  re-report suppression (default tau)
//   --stats               print miner statistics at the end
//   --metrics=json|prom[,<path>]   periodic telemetry reports (JSON or
//                         Prometheus text exposition); with a path the file
//                         is rewritten each tick, otherwise stderr
//   --metrics_interval=N  reporting period in seconds (default 10); a final
//                         report is always emitted at exit
//   --kernel=auto|scalar|sse|avx2   SIMD dispatch level for the mining
//                         kernels (default auto = best the CPU supports;
//                         unsupported levels are clamped with a warning).
//                         The FCP_KERNEL env var sets the same knob.
//   --batch=N             ingest N events per MiningEngine::IngestBatch call
//                         (default 1 = per-event PushEvent); results are
//                         identical for every N, only the ingestion cost
//                         changes
//   --shards=S            mine with the parallel pipeline (S miner shards);
//                         0 (default) = serial MiningEngine. Results are
//                         invariant in S; alerts print after the run drains.
//   --workers=W           parallel ingestion workers (default 2; needs
//                         --shards >= 1)
//   --placement=hash|freq initial object->shard placement (default hash).
//                         freq runs an offline frequency pre-pass over the
//                         trace and seeds a greedy (LPT) placement, so hot
//                         objects spread across shards instead of landing
//                         wherever the hash says. Results are invariant.
//   --rebalance           watch per-shard load while mining and migrate hot
//                         objects between shards through the router's
//                         backfill fence (needs --shards >= 2). Results are
//                         invariant; the imbalance gauge and migration
//                         counters land in --metrics output.
//   --steal               idle shard threads mine queued segments of the
//                         most-loaded shard (that shard's miner, under its
//                         mutex). Results are invariant; only thread
//                         assignment changes.
//   --trace=<path>[,ring_kb]   record a flight-recorder trace of the run and
//                         write Chrome trace-event JSON to <path> (open in
//                         Perfetto / chrome://tracing). ring_kb sizes each
//                         thread's ring (default 256 KiB). Also arms a
//                         fatal-signal handler that dumps the recorder to
//                         <path>.crash.json.
//   --slow_op_ns=N        dump forensics (triggering segment, miner state,
//                         recorder tail) for any mine call slower than N ns;
//                         dumps land at <trace path or "fcpmine">.slowop-<n>
//                         .json
//   --listen=[host:]port  serve the live introspection plane over HTTP while
//                         mining: GET /metrics (Prometheus 0.0.4), /varz
//                         (JSON), /statusz (pipeline topology), /healthz,
//                         /readyz, /tracez (recent slow ops), /pprof/profile
//                         and /pprof/heap (folded profiles). Read-only,
//                         snapshot-on-scrape; results are byte-identical
//                         with the server on or off. Also arms the pipeline
//                         watchdog behind /healthz (stall detection).
//   --watchdog_interval_ms=N   watchdog evaluation cadence (default 100)
//   --stall_timeout_ms=N  no stage progress for this long while busy (or
//                         with queued input) => stalled (default 2000)
//   --pace=N              throttle ingestion to ~N events/second (0 =
//                         unthrottled); keeps a run alive long enough to
//                         scrape it
//   --profile=<path>[,hz] sample the whole run with the in-process CPU +
//                         off-CPU profiler (default 100 Hz) and write the
//                         folded-stack profile to <path> at exit (feed it
//                         to flamegraph.pl / speedscope, or inspect with
//                         fcpprof). Also arms allocation-site sampling:
//                         /pprof/heap serves it live under --listen. With
//                         --listen but without --profile, /pprof/profile
//                         still samples on demand.

// Defines the counting operator new/delete for this binary (first include,
// one TU per binary): the alloc benches' counters and the heap profiler's
// sampling hook both hang off it.
#include "util/alloc_counter.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/placement.h"
#include "core/mining_engine.h"
#include "core/parallel_engine.h"
#include "core/pattern_report.h"
#include "datagen/traffic_gen.h"
#include "datagen/twitter_gen.h"
#include "io/trace_io.h"
#include "obs/endpoints.h"
#include "obs/obs_server.h"
#include "obs/watchdog.h"
#include "prof/prof.h"
#include "telemetry/registry.h"
#include "telemetry/reporter.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/kernels/kernels.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "fcpmine: %s\n", message.c_str());
  return 1;
}

std::string PatternToString(const fcp::Pattern& pattern) {
  std::string out = "{";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(pattern[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);

  // --- Flight recorder + slow-op forensics: arm before any mining runs so
  // the whole run (including engine construction) is on the record. ---------
  const std::string trace_flag = flags.GetString("trace", "");
  std::string trace_path;
  if (!trace_flag.empty()) {
    trace_path = trace_flag;
    size_t ring_kb = 256;
    const size_t comma = trace_flag.find(',');
    if (comma != std::string::npos) {
      trace_path = trace_flag.substr(0, comma);
      const std::string kb = trace_flag.substr(comma + 1);
      char* end = nullptr;
      ring_kb = std::strtoul(kb.c_str(), &end, 10);
      if (end == kb.c_str() || *end != '\0' || ring_kb == 0) {
        return Fail("bad --trace ring size '" + kb + "'");
      }
    }
    if (trace_path.empty()) return Fail("--trace needs a path");
    fcp::trace::Start(ring_kb);
    fcp::trace::SetThreadName("main");
    fcp::trace::InstallCrashHandler(trace_path + ".crash.json");
  }
  // --- Profiler: register main before mining so its samples are attributed,
  // and arm whole-run sampling when --profile is set. ------------------------
  fcp::prof::ThreadScope prof_main_scope("main");
  const std::string profile_flag = flags.GetString("profile", "");
  std::string profile_path;
  if (!profile_flag.empty()) {
    profile_path = profile_flag;
    long profile_hz = 100;
    const size_t comma = profile_flag.find(',');
    if (comma != std::string::npos) {
      profile_path = profile_flag.substr(0, comma);
      const std::string hz = profile_flag.substr(comma + 1);
      char* end = nullptr;
      profile_hz = std::strtol(hz.c_str(), &end, 10);
      if (end == hz.c_str() || *end != '\0' || profile_hz < 1 ||
          profile_hz > 1000) {
        return Fail("bad --profile rate '" + hz + "' (want 1..1000 Hz)");
      }
    }
    if (profile_path.empty()) return Fail("--profile needs a path");
    if (!fcp::prof::kCompiledIn) {
      return Fail("--profile: profiler compiled out (-DFCP_PROF=OFF)");
    }
    if (!fcp::prof::StartCpuProfiler(
            static_cast<int>(profile_hz),
            &fcp::telemetry::MetricRegistry::Global())) {
      return Fail("--profile: cannot arm the CPU profiler");
    }
    fcp::prof::EnableHeapProfiler();
  }
  // Whole-run captures outlive the sample rings (drop-oldest at ~20s of
  // backlog per thread at 100 Hz), so a background collector folds them
  // into the trie every couple of seconds. Profiling-armed tests run
  // without this thread on purpose — collection allocates, the sample path
  // does not.
  std::atomic<bool> prof_collector_stop{false};
  std::thread prof_collector;
  if (!profile_path.empty()) {
    prof_collector = std::thread([&prof_collector_stop] {
      fcp::prof::ThreadScope scope("prof-collector");
      int ticks = 0;
      while (!prof_collector_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (++ticks % 10 == 0) fcp::prof::CollectNow();
      }
    });
  }

  const int64_t slow_op_ns = flags.GetInt("slow_op_ns", 0);
  if (slow_op_ns < 0) return Fail("--slow_op_ns must be >= 0");
  if (slow_op_ns > 0) {
    fcp::trace::SlowOpOptions slow;
    slow.threshold_ns = slow_op_ns;
    slow.dump_prefix = trace_path.empty() ? "fcpmine" : trace_path;
    fcp::trace::ConfigureSlowOp(slow);
  }

  // Kernel dispatch is process-global; pick it before any mining runs.
  const std::string kernel = flags.GetString("kernel", "");
  if (!kernel.empty() && !fcp::kernels::SetKernelLevelFromString(kernel)) {
    return Fail("unknown --kernel '" + kernel +
                "' (want auto, scalar, sse or avx2)");
  }

  // --- Load or synthesize the trace. ---------------------------------------
  std::vector<fcp::ObjectEvent> events;
  const std::string input = flags.GetString("input", "");
  const std::string synthetic = flags.GetString("synthetic", "");
  if (!input.empty()) {
    const fcp::Status status = fcp::LoadTrace(input, &events);
    if (!status.ok()) return Fail(status.ToString());
  } else if (synthetic == "traffic") {
    fcp::TrafficConfig config;
    config.total_events =
        static_cast<uint64_t>(flags.GetInt("events", 50000));
    events = GenerateTraffic(config).events;
  } else if (synthetic == "twitter") {
    fcp::TwitterConfig config;
    config.total_tweets =
        static_cast<uint64_t>(flags.GetInt("events", 50000)) / 5;
    events = GenerateTwitter(config).events;
  } else {
    return Fail("need --input=<trace.csv|trace.fcpt> or --synthetic=traffic|twitter");
  }
  if (events.empty()) return Fail("trace contains no events");

  // --- Configure the miner. -------------------------------------------------
  fcp::MiningParams params;
  params.xi = fcp::Seconds(flags.GetInt("xi", 60));
  params.tau = fcp::Seconds(flags.GetInt("tau", 1800));
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 3));
  params.min_pattern_size =
      static_cast<uint32_t>(flags.GetInt("min_size", 2));
  params.max_pattern_size =
      static_cast<uint32_t>(flags.GetInt("max_size", 5));
  const fcp::Status valid = params.Validate();
  if (!valid.ok()) return Fail("bad parameters: " + valid.ToString());

  fcp::MinerKind kind;
  const std::string algo = flags.GetString("algo", "coomine");
  if (algo == "coomine") {
    kind = fcp::MinerKind::kCooMine;
  } else if (algo == "dimine") {
    kind = fcp::MinerKind::kDiMine;
  } else if (algo == "matrixmine") {
    kind = fcp::MinerKind::kMatrixMine;
  } else {
    return Fail("unknown --algo '" + algo + "'");
  }

  // --- Telemetry: share the process-wide registry with the engine and wire
  // the periodic reporter when --metrics is set. ------------------------------
  const std::string metrics = flags.GetString("metrics", "");
  const int64_t metrics_interval = flags.GetInt("metrics_interval", 10);
  if (metrics_interval < 0) {
    return Fail("--metrics_interval must be >= 0 (0 = final report only)");
  }
  std::unique_ptr<fcp::telemetry::MetricReporter> reporter;
  if (!metrics.empty()) {
    fcp::telemetry::ReporterOptions reporter_options;
    std::string format = metrics;
    const size_t comma = metrics.find(',');
    if (comma != std::string::npos) {
      format = metrics.substr(0, comma);
      reporter_options.path = metrics.substr(comma + 1);
    }
    if (format == "json") {
      reporter_options.format = fcp::telemetry::ReporterOptions::Format::kJson;
    } else if (format == "prom") {
      reporter_options.format =
          fcp::telemetry::ReporterOptions::Format::kPrometheus;
    } else {
      return Fail("unknown --metrics format '" + format +
                  "' (want json or prom)");
    }
    reporter_options.interval_ms = metrics_interval * 1000;
    reporter = std::make_unique<fcp::telemetry::MetricReporter>(
        &fcp::telemetry::MetricRegistry::Global(), reporter_options);
  }

  // --- Observability plane: --listen serves /metrics, /varz, /statusz,
  // /healthz, /readyz, /tracez from a single poll thread and arms the
  // pipeline watchdog. The server starts after the engine exists (handlers
  // capture it) and stops before it is destroyed. -------------------------
  const std::string listen = flags.GetString("listen", "");
  std::string listen_host = "127.0.0.1";
  int listen_port = -1;
  if (!listen.empty()) {
    std::string port_str = listen;
    const size_t colon = listen.rfind(':');
    if (colon != std::string::npos) {
      if (colon > 0) listen_host = listen.substr(0, colon);
      port_str = listen.substr(colon + 1);
    }
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
      return Fail("bad --listen '" + listen + "' (want [host:]port)");
    }
    listen_port = static_cast<int>(port);
  }
  const int64_t watchdog_interval_ms =
      flags.GetInt("watchdog_interval_ms", 100);
  const int64_t stall_timeout_ms = flags.GetInt("stall_timeout_ms", 2000);
  if (watchdog_interval_ms <= 0 || stall_timeout_ms <= 0) {
    return Fail("--watchdog_interval_ms/--stall_timeout_ms must be > 0");
  }
  const int64_t pace = flags.GetInt("pace", 0);
  if (pace < 0) return Fail("--pace must be >= 0 (0 = unthrottled)");
  std::unique_ptr<fcp::obs::Watchdog> watchdog;
  std::unique_ptr<fcp::obs::ObsServer> obs_server;
  if (listen_port >= 0) {
    fcp::obs::WatchdogOptions wd_options;
    wd_options.poll_interval_ms = watchdog_interval_ms;
    wd_options.stall_timeout_ms = stall_timeout_ms;
    wd_options.metrics = &fcp::telemetry::MetricRegistry::Global();
    watchdog = std::make_unique<fcp::obs::Watchdog>(wd_options);
  }
  // Starts the server over the running engine's status sources; shared by
  // the serial and parallel paths below.
  auto start_obs =
      [&](std::function<std::string()> status,
          std::function<void()> refresh) -> fcp::Status {
    fcp::obs::ObsServerOptions server_options;
    server_options.host = listen_host;
    server_options.port = static_cast<uint16_t>(listen_port);
    server_options.metrics = &fcp::telemetry::MetricRegistry::Global();
    obs_server = std::make_unique<fcp::obs::ObsServer>(server_options);
    fcp::obs::EndpointSources sources;
    sources.registry = &fcp::telemetry::MetricRegistry::Global();
    sources.watchdog = watchdog.get();
    sources.pipeline_status = std::move(status);
    sources.refresh = std::move(refresh);
    fcp::obs::InstallStandardEndpoints(*obs_server, sources);
    const fcp::Status started = obs_server->Start();
    if (!started.ok()) return started;
    std::fprintf(stderr, "fcpmine: observability plane on http://%s:%u/\n",
                 listen_host.c_str(), obs_server->port());
    // Readiness flips 503 -> 200 at the first watchdog evaluation after
    // SetReady — about one --watchdog_interval_ms after the port opens.
    watchdog->Start();
    watchdog->SetReady();
    return fcp::Status::OK();
  };
  // Stop order matters: the watchdog's probes and the server's handlers
  // reference the engine, so both stop before the engine goes out of scope.
  auto stop_obs = [&] {
    if (watchdog) watchdog->Stop();
    if (obs_server) obs_server->Stop();
  };

  const int64_t shards = flags.GetInt("shards", 0);
  const int64_t workers = flags.GetInt("workers", 2);
  if (shards < 0) return Fail("--shards must be >= 0 (0 = serial engine)");
  if (shards > 0 && workers < 1) return Fail("--workers must be >= 1");

  const std::string placement_mode = flags.GetString("placement", "hash");
  const bool rebalance = flags.GetBool("rebalance", false);
  const bool steal = flags.GetBool("steal", false);
  if (placement_mode != "hash" && placement_mode != "freq") {
    return Fail("unknown --placement '" + placement_mode +
                "' (want hash or freq)");
  }
  if ((placement_mode == "freq" || rebalance || steal) && shards < 1) {
    return Fail("--placement=freq/--rebalance/--steal need --shards >= 1");
  }
  std::shared_ptr<const fcp::PlacementMap> placement;
  if (placement_mode == "freq" && shards > 1) {
    // Offline pre-pass: observed per-object frequencies seed a greedy (LPT)
    // placement. Ownership is placement-agnostic, so this only moves load —
    // the mined output is identical.
    std::vector<uint64_t> counts;
    for (const fcp::ObjectEvent& event : events) {
      if (event.object >= counts.size()) counts.resize(event.object + 1, 0);
      ++counts[event.object];
    }
    std::vector<std::pair<fcp::ObjectId, uint64_t>> weights;
    weights.reserve(counts.size());
    for (fcp::ObjectId object = 0; object < counts.size(); ++object) {
      if (counts[object] > 0) weights.push_back({object, counts[object]});
    }
    placement =
        fcp::BuildGreedyPlacement(weights, static_cast<uint32_t>(shards));
  }

  const fcp::DurationMs suppression =
      fcp::Seconds(flags.GetInt("suppress", params.tau / 1000));
  const std::string report = flags.GetString("report", "stream");
  const bool stream_mode = report == "stream";
  fcp::PatternSupportIndex support;

  // --- Run. ------------------------------------------------------------------
  fcp::Stopwatch clock;
  // Sleep-throttled pacing against the run clock: cheap when off, and when
  // on it never drifts (sleeps only while ahead of the target rate).
  auto pace_sleep = [&](size_t events_pushed) {
    if (pace <= 0) return;
    const double ahead_s =
        static_cast<double>(events_pushed) / static_cast<double>(pace) -
        clock.ElapsedSeconds();
    if (ahead_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ahead_s));
    }
  };
  uint64_t alerts = 0;
  auto handle = [&](const std::vector<fcp::Fcp>& fcps) {
    for (const fcp::Fcp& fcp : fcps) {
      ++alerts;
      support.Add(fcp);
      if (stream_mode) {
        std::printf("FCP %s in %zu streams within [%lld, %lld]\n",
                    PatternToString(fcp.objects).c_str(), fcp.streams.size(),
                    static_cast<long long>(fcp.window_start),
                    static_cast<long long>(fcp.window_end));
      }
    }
  };
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 1));
  uint64_t segments_completed = 0;
  size_t index_bytes = 0;
  fcp::MinerStats stats;  // summed across shards in the parallel path
  fcp::SegmentPoolStats pool_stats;
  if (shards > 0) {
    // Parallel pipeline: alerts surface only after Finish() drains the
    // shards, so stream mode prints them post-hoc in merged order.
    fcp::ParallelEngineOptions poptions;
    poptions.num_workers = static_cast<uint32_t>(workers);
    poptions.num_miner_shards = static_cast<uint32_t>(shards);
    poptions.suppression_window = suppression;
    poptions.metrics = &fcp::telemetry::MetricRegistry::Global();
    poptions.placement = placement;
    poptions.rebalance = rebalance;
    poptions.steal = steal;
    poptions.watchdog = watchdog.get();
    fcp::ParallelEngine engine(kind, params, poptions);
    if (obs_server == nullptr && listen_port >= 0) {
      const fcp::Status started =
          start_obs([&engine] { return engine.StatusJson(); },
                    [&engine] { engine.SnapshotMetrics(); });
      if (!started.ok()) return Fail(started.ToString());
    }
    if (batch <= 1) {
      size_t pushed = 0;
      for (const fcp::ObjectEvent& event : events) {
        engine.Push(event);
        pace_sleep(++pushed);
      }
    } else {
      for (size_t i = 0; i < events.size(); i += batch) {
        const size_t n = std::min(batch, events.size() - i);
        engine.PushBatch(std::span(events.data() + i, n));
        pace_sleep(i + n);
      }
    }
    engine.Finish();
    handle(engine.results());
    segments_completed = engine.segments_completed();
    for (uint32_t s = 0; s < engine.num_miner_shards(); ++s) {
      const fcp::FcpMiner& miner = engine.shard_miner(s);
      index_bytes += miner.MemoryUsage();
      const fcp::MinerStats& shard_stats = miner.stats();
      stats.mining_ns += shard_stats.mining_ns;
      stats.maintenance_ns += shard_stats.maintenance_ns;
      stats.candidates_checked += shard_stats.candidates_checked;
      stats.lcp_rows += shard_stats.lcp_rows;
      stats.segments_expired += shard_stats.segments_expired;
    }
    pool_stats = engine.segment_pool().stats();
    // The queue/pool gauges refresh on snapshot, not continuously; one
    // refresh here makes the reporter's final report carry end-of-run values.
    if (reporter) engine.SnapshotMetrics();
    stop_obs();
  } else {
    fcp::EngineOptions options;
    options.suppression_window = suppression;
    options.metrics = &fcp::telemetry::MetricRegistry::Global();
    options.watchdog = watchdog.get();
    fcp::MiningEngine engine(kind, params, options);
    if (obs_server == nullptr && listen_port >= 0) {
      const fcp::Status started =
          start_obs([&engine] { return engine.StatusJson(); },
                    [&engine] { engine.SnapshotMetrics(); });
      if (!started.ok()) return Fail(started.ToString());
    }
    if (batch <= 1) {
      size_t pushed = 0;
      for (const fcp::ObjectEvent& event : events) {
        handle(engine.PushEvent(event));
        pace_sleep(++pushed);
      }
    } else {
      for (size_t i = 0; i < events.size(); i += batch) {
        const size_t n = std::min(batch, events.size() - i);
        handle(engine.IngestBatch(std::span(events.data() + i, n)));
        pace_sleep(i + n);
      }
    }
    handle(engine.Flush());
    segments_completed = engine.segments_completed();
    index_bytes = engine.MemoryUsage();
    stats = engine.miner().stats();
    pool_stats = engine.mux().pool().stats();
    if (reporter) engine.SnapshotMetrics();
    stop_obs();
  }
  const double elapsed = clock.ElapsedSeconds();
  // Stop the reporter before printing the human summary: Stop() joins the
  // background thread and emits one final, complete report.
  if (reporter) reporter->Stop();
  // Stop recording before serializing: the pipeline threads are joined, so
  // the snapshot is exact (no torn tail slots).
  if (!trace_path.empty()) {
    fcp::trace::Stop();
    if (fcp::trace::WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "fcpmine: trace written to %s\n",
                   trace_path.c_str());
    } else {
      return Fail("cannot write trace to " + trace_path);
    }
  }
  if (!profile_path.empty()) {
    // Pipeline threads are joined; stop sampling, fold everything that is
    // still in the rings and write the offline profile.
    prof_collector_stop.store(true, std::memory_order_relaxed);
    prof_collector.join();
    fcp::prof::StopCpuProfiler();
    fcp::prof::DisableHeapProfiler();
    const std::string folded = fcp::prof::FoldedProfile();
    std::FILE* f = std::fopen(profile_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(folded.data(), 1, folded.size(), f) != folded.size()) {
      if (f != nullptr) std::fclose(f);
      return Fail("cannot write profile to " + profile_path);
    }
    std::fclose(f);
    const fcp::prof::ProfStats pstats = fcp::prof::Stats();
    std::fprintf(stderr,
                 "fcpmine: folded profile written to %s (%llu samples, "
                 "%llu dropped, %llu threads)\n",
                 profile_path.c_str(),
                 static_cast<unsigned long long>(pstats.samples),
                 static_cast<unsigned long long>(pstats.drops),
                 static_cast<unsigned long long>(pstats.threads));
  }
  if (slow_op_ns > 0 && fcp::trace::SlowOpDumpCount() > 0) {
    std::fprintf(
        stderr, "fcpmine: %llu slow-op dump(s) written (prefix %s)\n",
        static_cast<unsigned long long>(fcp::trace::SlowOpDumpCount()),
        (trace_path.empty() ? "fcpmine" : trace_path.c_str()));
  }

  // --- Report. ----------------------------------------------------------------
  if (report == "topk" || report == "maximal") {
    const auto entries =
        report == "topk"
            ? support.TopK(static_cast<size_t>(flags.GetInt("k", 20)))
            : support.MaximalPatterns();
    fcp::TablePrinter table({"pattern", "streams", "window_ms"});
    for (const auto& entry : entries) {
      table.AddRow({PatternToString(entry.pattern),
                    std::to_string(entry.support),
                    std::to_string(entry.window_end - entry.window_start)});
    }
    table.Print(std::cout);
  }

  std::fprintf(stderr,
               "fcpmine: %zu events, %llu segments, %llu alerts, "
               "%zu distinct patterns, %.2fs (%.0f events/s), index %.2f MB\n",
               events.size(),
               static_cast<unsigned long long>(segments_completed),
               static_cast<unsigned long long>(alerts), support.size(),
               elapsed, static_cast<double>(events.size()) / elapsed,
               static_cast<double>(index_bytes) / (1024.0 * 1024.0));

  if (flags.GetBool("stats", false)) {
    std::fprintf(stderr,
                 "  mining %.1f ms, maintenance %.1f ms, candidates %llu, "
                 "lcp rows %llu, expired %llu\n",
                 static_cast<double>(stats.mining_ns) / 1e6,
                 static_cast<double>(stats.maintenance_ns) / 1e6,
                 static_cast<unsigned long long>(stats.candidates_checked),
                 static_cast<unsigned long long>(stats.lcp_rows),
                 static_cast<unsigned long long>(stats.segments_expired));
    std::fprintf(
        stderr,
        "  segment pool: %llu hits, %llu misses, %llu live, %llu parked, "
        "%.1f MB recycled\n",
        static_cast<unsigned long long>(pool_stats.pool_hits),
        static_cast<unsigned long long>(pool_stats.slab_allocs),
        static_cast<unsigned long long>(pool_stats.live),
        static_cast<unsigned long long>(pool_stats.free),
        static_cast<double>(pool_stats.recycled_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}
